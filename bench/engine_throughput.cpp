// Simulator hot-path microbenches: the events/sec trajectory.
//
// Every campaign cell is a private simulator run, so campaign wall time
// at the million-cell scale is simulator throughput. Three microbenches
// stress the three hot paths separately:
//
//   timer_churn  — pure delay() traffic: schedule_resume + heap churn,
//                  the path PR 4 moved to bare coroutine handles;
//   lock_convoy  — a WaitQueue hand-off chain: wait()/notify_one with a
//                  mix of timed and infinite waits, the parking-lot
//                  allocation path;
//   notify_storm — notify_all over a wide waiter set each round, the
//                  batched-wakeup path.
//
// Emits BENCH_engine.json (cwd) so CI archives events/sec next to
// BENCH_bond.json / BENCH_scenarios.json; the workflow soft-checks the
// numbers against the committed baseline (warn-only — CI hardware
// varies, the trajectory is what matters).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_common.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/wait_queue.h"
#include "util/table.h"

namespace {

using namespace mes;
using sim::Proc;
using sim::Simulator;
using sim::WaitQueue;

struct MicrobenchResult {
  std::uint64_t events = 0;    // simulator events dispatched
  std::uint64_t wakeups = 0;   // waiter resumptions delivered
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double wakeups_per_sec = 0.0;
};

// mes-lint: allow(no-wallclock) this bench measures REAL events/sec of the engine itself; host time is the measurand, not a simulated result
double wall_seconds(std::chrono::steady_clock::time_point start)
{
  // mes-lint: allow(no-wallclock) this bench measures REAL events/sec of the engine itself; host time is the measurand, not a simulated result
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- timer_churn --------------------------------------------------------

Proc churn_proc(Simulator& sim, int id, int rounds)
{
  for (int i = 0; i < rounds; ++i) {
    // Spread the delays so the heap stays deep and pushes interleave.
    co_await sim.delay(Duration::us(1.0 + (id * 7 + i) % 13));
  }
}

MicrobenchResult run_timer_churn()
{
  constexpr int kProcs = 256;
  constexpr int kRounds = 4000;
  Simulator sim{42};
  for (int p = 0; p < kProcs; ++p) {
    sim.spawn(churn_proc(sim, p, kRounds));
  }
  // mes-lint: allow(no-wallclock) this bench measures REAL events/sec of the engine itself; host time is the measurand, not a simulated result
  const auto start = std::chrono::steady_clock::now();
  const sim::RunResult r = sim.run();
  MicrobenchResult out;
  out.events = r.events_processed;
  out.wakeups = r.events_processed;
  out.wall_s = wall_seconds(start);
  out.events_per_sec = static_cast<double>(out.events) / out.wall_s;
  out.wakeups_per_sec = out.events_per_sec;
  return out;
}

// --- lock_convoy --------------------------------------------------------

Proc convoy_waiter(Simulator& sim, WaitQueue& q, int id, std::uint64_t& woken,
                   bool& done)
{
  while (!done) {
    // Every third waiter uses a finite timeout that mostly does not
    // expire — the timeout bookkeeping is part of the measured path.
    const Duration timeout =
        (id % 3 == 0) ? Duration::us(500) : Duration::max();
    const sim::WaitOutcome outcome = co_await q.wait(sim, timeout);
    if (outcome == sim::WaitOutcome::signaled) ++woken;
  }
}

Proc convoy_driver(Simulator& sim, WaitQueue& q, int rounds, bool& done)
{
  for (int i = 0; i < rounds; ++i) {
    q.notify_one(sim, Duration::us(1));
    co_await sim.delay(Duration::us(3));
  }
  done = true;
  // Drain: wake everything so no waiter parks forever.
  while (q.notify_all(sim) > 0) {
    co_await sim.delay(Duration::us(1));
  }
}

MicrobenchResult run_lock_convoy()
{
  constexpr int kWaiters = 64;
  constexpr int kRounds = 120'000;
  Simulator sim{7};
  WaitQueue q;
  std::uint64_t woken = 0;
  bool done = false;
  for (int w = 0; w < kWaiters; ++w) {
    sim.spawn(convoy_waiter(sim, q, w, woken, done));
  }
  sim.spawn(convoy_driver(sim, q, kRounds, done));
  // mes-lint: allow(no-wallclock) this bench measures REAL events/sec of the engine itself; host time is the measurand, not a simulated result
  const auto start = std::chrono::steady_clock::now();
  const sim::RunResult r = sim.run();
  MicrobenchResult out;
  out.events = r.events_processed;
  out.wakeups = woken;
  out.wall_s = wall_seconds(start);
  out.events_per_sec = static_cast<double>(out.events) / out.wall_s;
  out.wakeups_per_sec = static_cast<double>(out.wakeups) / out.wall_s;
  return out;
}

// --- notify_storm -------------------------------------------------------

Proc storm_waiter(Simulator& sim, WaitQueue& q, std::uint64_t& woken,
                  bool& done)
{
  while (!done) {
    const sim::WaitOutcome outcome = co_await q.wait(sim);
    (void)outcome;
    ++woken;
  }
}

Proc storm_driver(Simulator& sim, WaitQueue& q, int rounds,
                  std::size_t waiters, bool& done)
{
  for (int i = 0; i < rounds; ++i) {
    // Let the full set park again before the next storm.
    while (q.size() < waiters) {
      co_await sim.delay(Duration::us(1));
    }
    if (i + 1 == rounds) done = true;
    q.notify_all(sim, Duration::us(2));
  }
}

MicrobenchResult run_notify_storm()
{
  constexpr std::size_t kWaiters = 512;
  constexpr int kRounds = 2'000;
  Simulator sim{13};
  WaitQueue q;
  std::uint64_t woken = 0;
  bool done = false;
  for (std::size_t w = 0; w < kWaiters; ++w) {
    sim.spawn(storm_waiter(sim, q, woken, done));
  }
  sim.spawn(storm_driver(sim, q, kRounds, kWaiters, done));
  // mes-lint: allow(no-wallclock) this bench measures REAL events/sec of the engine itself; host time is the measurand, not a simulated result
  const auto start = std::chrono::steady_clock::now();
  const sim::RunResult r = sim.run();
  MicrobenchResult out;
  out.events = r.events_processed;
  out.wakeups = woken;
  out.wall_s = wall_seconds(start);
  out.events_per_sec = static_cast<double>(out.events) / out.wall_s;
  out.wakeups_per_sec = static_cast<double>(out.wakeups) / out.wall_s;
  return out;
}

// --- harness ------------------------------------------------------------

// Wall-clock benches jitter; keep the best of three so the archived
// trajectory tracks the engine, not the CI neighbours.
template <typename Fn>
MicrobenchResult best_of(Fn fn, int reps = 3)
{
  MicrobenchResult best = fn();
  for (int i = 1; i < reps; ++i) {
    const MicrobenchResult r = fn();
    if (r.events_per_sec > best.events_per_sec) best = r;
  }
  return best;
}

void emit_json(const MicrobenchResult& churn, const MicrobenchResult& convoy,
               const MicrobenchResult& storm)
{
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\":\"engine_throughput\",\n"
      " \"timer_churn\":{\"events\":%llu,\"wall_s\":%.4f,"
      "\"events_per_sec\":%.0f},\n"
      " \"lock_convoy\":{\"events\":%llu,\"wakeups\":%llu,\"wall_s\":%.4f,"
      "\"events_per_sec\":%.0f,\"wakeups_per_sec\":%.0f},\n"
      " \"notify_storm\":{\"events\":%llu,\"wakeups\":%llu,\"wall_s\":%.4f,"
      "\"events_per_sec\":%.0f,\"wakeups_per_sec\":%.0f}}\n",
      static_cast<unsigned long long>(churn.events), churn.wall_s,
      churn.events_per_sec,
      static_cast<unsigned long long>(convoy.events),
      static_cast<unsigned long long>(convoy.wakeups), convoy.wall_s,
      convoy.events_per_sec, convoy.wakeups_per_sec,
      static_cast<unsigned long long>(storm.events),
      static_cast<unsigned long long>(storm.wakeups), storm.wall_s,
      storm.events_per_sec, storm.wakeups_per_sec);
  std::ofstream out{"BENCH_engine.json"};
  if (out) {
    out << buf;
    std::printf("\nwrote BENCH_engine.json\n");
  }
}

void BM_TimerChurn(benchmark::State& state)
{
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_timer_churn().events);
  }
}
BENCHMARK(BM_TimerChurn)->Unit(benchmark::kMillisecond);

void BM_LockConvoy(benchmark::State& state)
{
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_lock_convoy().events);
  }
}
BENCHMARK(BM_LockConvoy)->Unit(benchmark::kMillisecond);

void BM_NotifyStorm(benchmark::State& state)
{
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_notify_storm().events);
  }
}
BENCHMARK(BM_NotifyStorm)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  mes::bench::print_header(
      "Simulator engine throughput: timer churn, lock convoy, notify storm",
      "the event-queue hot path behind Tables IV-VI campaign grids");

  const MicrobenchResult churn = best_of(run_timer_churn);
  const MicrobenchResult convoy = best_of(run_lock_convoy);
  const MicrobenchResult storm = best_of(run_notify_storm);

  mes::TextTable table({"microbench", "events", "wakeups", "wall(s)",
                        "events/sec", "wakeups/sec"});
  const auto row = [&](const char* name, const MicrobenchResult& r) {
    table.add_row({name, std::to_string(r.events), std::to_string(r.wakeups),
                   mes::TextTable::num(r.wall_s, 3),
                   mes::TextTable::num(r.events_per_sec / 1e6, 2) + "M",
                   mes::TextTable::num(r.wakeups_per_sec / 1e6, 2) + "M"});
  };
  row("timer_churn", churn);
  row("lock_convoy", convoy);
  row("notify_storm", storm);
  table.print();

  emit_json(churn, convoy, storm);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
