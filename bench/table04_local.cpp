// Reproduces Table IV: channel performance in the local scenario.
//
// All six MESM channels at the paper's Timeset values, 20k payload bits
// each. Expected shape: every BER < 1%; cooperation channels (Event,
// Timer) beat contention channels; Semaphore is slowest (6 ops/bit).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "exec/campaign.h"

namespace {

using namespace mes;

constexpr std::size_t kBits = 20000;

struct PaperRow {
  double ber_pct;
  double tr_kbps;
};

PaperRow paper_row(Mechanism m)
{
  switch (m) {
    case Mechanism::flock: return {0.615, 7.182};
    case Mechanism::file_lock_ex: return {0.758, 7.678};
    case Mechanism::mutex: return {0.759, 7.612};
    case Mechanism::semaphore: return {0.741, 4.498};
    case Mechanism::event: return {0.554, 13.105};
    case Mechanism::waitable_timer: return {0.600, 11.683};
    default: return {0, 0};
  }
}

void print_table()
{
  mes::bench::print_header("Channel performance, LOCAL scenario",
                           "Table IV of MES-Attacks, DAC'23");
  TextTable table({"Attack method", "Timeset(us)", "BER(%)", "TR(kb/s)",
                   "paper BER(%)", "paper TR(kb/s)", "sync"});
  exec::ExperimentPlan plan;
  plan.mechanisms = {
      Mechanism::flock,     Mechanism::file_lock_ex,
      Mechanism::mutex,     Mechanism::semaphore,
      Mechanism::event,     Mechanism::waitable_timer,
  };
  plan.scenarios = {{Scenario::local, HypervisorType::none}};
  plan.payload_bits = kBits;
  plan.seed_base = 0x7ab1e04;
  // Keep the pre-campaign per-mechanism seeds so the published table
  // values are unchanged by the refactor.
  plan.tweak = [](ExperimentConfig& cfg, const exec::CellCoord&) {
    cfg.seed = 0x7ab1e04 + static_cast<std::uint64_t>(cfg.mechanism);
  };
  const exec::CampaignResult result = exec::CampaignRunner{}.run(plan);
  for (const exec::CellResult& cell : result.cells) {
    const ChannelReport& rep = cell.report;
    const Mechanism m = cell.cell.config.mechanism;
    const PaperRow paper = paper_row(m);
    table.add_row({to_string(m),
                   mes::bench::timeset_string(m, cell.cell.config.timing),
                   rep.ok ? TextTable::num(rep.ber_percent(), 3) : "-",
                   rep.ok ? TextTable::num(rep.throughput_kbps(), 3) : "-",
                   TextTable::num(paper.ber_pct, 3),
                   TextTable::num(paper.tr_kbps, 3),
                   rep.ok ? (rep.sync_ok ? "ok" : "FAIL") : rep.failure_reason});
  }
  table.print();
}

// google-benchmark microbenches: wall time of a short transmission per
// mechanism (simulation cost, not simulated time).
void BM_LocalTransmission(benchmark::State& state)
{
  const auto m = static_cast<Mechanism>(state.range(0));
  ExperimentConfig cfg;
  cfg.mechanism = m;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(m, Scenario::local);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = ++seed;
    const ChannelReport rep = mes::bench::run_random(cfg, 512);
    benchmark::DoNotOptimize(rep.ber);
  }
}
BENCHMARK(BM_LocalTransmission)
    ->Arg(static_cast<int>(Mechanism::flock))
    ->Arg(static_cast<int>(Mechanism::event))
    ->Arg(static_cast<int>(Mechanism::semaphore))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
