// Reproduces Fig. 9: Event-channel performance vs. time parameters.
//
// (a) BER vs. tw0 for ti in {30,50,70,90,110,130} us — expected shape:
//     every curve rises steeply below tw0 = 15 us (sub-granularity
//     sleeps); the ti=30 curve exceeds 1% and grows with tw0 (blocks in
//     the Trojan's send window defeat a 15 us margin); ti >= 50 stays
//     below 1% and roughly flat.
// (b) TR vs. the same sweep — TR falls with both parameters; the best
//     sub-1%-BER point is tw0=15, ti~65-70 at ~13 kb/s (Table IV).
#include <benchmark/benchmark.h>

#include "analysis/sweep.h"
#include "bench/bench_common.h"

namespace {

using namespace mes;

constexpr std::size_t kBitsPerPoint = 20000;

void print_figure()
{
  mes::bench::print_header("Event channel: BER / TR vs (tw0, ti)",
                           "Fig. 9(a) and 9(b) of MES-Attacks, DAC'23");

  const std::vector<double> tw0_us = {5, 10, 15, 25, 35, 45, 55, 65, 75};
  const std::vector<double> ti_us = {30, 50, 70, 90, 110, 130};

  const auto points = analysis::sweep_grid(
      tw0_us, ti_us, kBitsPerPoint, 0xF19009,
      [](double tw0, double ti) {
        ExperimentConfig cfg;
        cfg.mechanism = Mechanism::event;
        cfg.scenario = Scenario::local;
        cfg.timing.t0 = Duration::us(tw0);
        cfg.timing.interval = Duration::us(ti);
        return cfg;
      });

  TextTable ber({"tw0(us) \\ ti(us)", "30", "50", "70", "90", "110", "130"});
  TextTable tr({"tw0(us) \\ ti(us)", "30", "50", "70", "90", "110", "130"});
  for (std::size_t r = 0; r < tw0_us.size(); ++r) {
    std::vector<std::string> ber_row{TextTable::num(tw0_us[r], 0)};
    std::vector<std::string> tr_row{TextTable::num(tw0_us[r], 0)};
    for (std::size_t c = 0; c < ti_us.size(); ++c) {
      const auto& p = points[c * tw0_us.size() + r];
      ber_row.push_back(p.ok ? TextTable::num(p.ber * 100.0, 3) : "x");
      tr_row.push_back(p.ok ? TextTable::num(p.throughput_bps / 1000.0, 2)
                            : "x");
    }
    ber.add_row(ber_row);
    tr.add_row(tr_row);
  }
  std::printf("\nFig. 9(a): BER(%%) vs tw0 (rows) and ti (columns)\n");
  ber.print();
  std::printf("\nFig. 9(b): TR(kb/s) vs tw0 (rows) and ti (columns)\n");
  tr.print();
  std::printf(
      "\nPaper checkpoints: BER > 1%% below tw0=15; ti=30 exceeds 1%% and\n"
      "grows with tw0; ti >= 50 stays under ~1%%; max TR ~13.1 kb/s at\n"
      "(tw0=15, ti=65-70).\n");
}

void BM_EventSweepPoint(benchmark::State& state)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing.t0 = Duration::us(static_cast<double>(state.range(0)));
  cfg.timing.interval = Duration::us(static_cast<double>(state.range(1)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(mes::bench::run_random(cfg, 256).ber);
  }
}
BENCHMARK(BM_EventSweepPoint)->Args({15, 65})->Args({75, 30})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
