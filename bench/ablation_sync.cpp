// Ablation: §V.B's two requirements for contention channels.
//
//  1. Fine-grained inter-bit synchronization. Without it the Spy paces
//     itself by raw sleeps; probe-cost drift accumulates across '0'
//     runs and every slip corrupts the rest of the stream — "such
//     errors are accumulated under the mutual exclusion mechanism".
//  2. Fair competition. With unfair hand-off, the Spy can barge in and
//     re-capture the resource the moment the Trojan sleeps.
//
// The paper's claim: the attack only works with both. This bench runs
// the flock channel through the 2x2 grid at two message lengths.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace mes;

ChannelReport run_cell(bool fine_sync, os::LockFairness fairness,
                       std::size_t bits, std::uint64_t seed)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.fine_grained_sync = fine_sync;
  cfg.fairness = fairness;
  cfg.seed = seed;
  cfg.max_events = 80'000'000;
  return mes::bench::run_random(cfg, bits);
}

void print_table()
{
  mes::bench::print_header(
      "Ablation: inter-bit sync and lock fairness (flock channel)",
      "§V.B of MES-Attacks, DAC'23");
  TextTable table({"configuration", "512-bit BER(%)", "8192-bit BER(%)",
                   "verdict"});
  struct Cell {
    const char* name;
    bool sync;
    os::LockFairness fairness;
  };
  const Cell cells[] = {
      {"fair + fine-grained sync", true, os::LockFairness::fair},
      {"fair, no fine-grained sync", false, os::LockFairness::fair},
      {"unfair + fine-grained sync", true, os::LockFairness::unfair},
      {"unfair, no fine-grained sync", false, os::LockFairness::unfair},
  };
  for (const Cell& cell : cells) {
    const ChannelReport small =
        run_cell(cell.sync, cell.fairness, 512, 0xAB1A7E);
    const ChannelReport large =
        run_cell(cell.sync, cell.fairness, 8192, 0xAB1A7F);
    auto fmt = [](const ChannelReport& r) {
      return r.ok ? TextTable::num(r.ber_percent(), 2) : std::string{"fail"};
    };
    const double worst =
        std::max(small.ok ? small.ber : 1.0, large.ok ? large.ber : 1.0);
    table.add_row({cell.name, fmt(small), fmt(large),
                   worst < 0.02 ? "channel works" : "channel broken"});
  }
  table.print();
  std::printf(
      "\nExpected: the fine-grained rendezvous is the decisive factor —\n"
      "without it, probe-cost drift slips the Spy's bit alignment and the\n"
      "accumulated errors (§V.B) push BER toward 50%% regardless of message\n"
      "length. The rendezvous also restores per-bit execution order, which\n"
      "is why it masks the fair/unfair hand-off distinction the paper\n"
      "highlights for its weaker synchronization: our reproduction's\n"
      "ordering guarantee subsumes the fair-pattern requirement.\n");
}

void BM_SyncedVsUnsynced(benchmark::State& state)
{
  const bool sync = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_cell(sync, os::LockFairness::fair, 256, ++seed).ber);
  }
}
BENCHMARK(BM_SyncedVsUnsynced)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
