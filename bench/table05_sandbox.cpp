// Reproduces Table V: channel performance in the cross-sandbox scenario.
//
// The sandbox (Firejail on Linux, Sandboxie on Windows) interposes on
// the syscall path but does not virtualize the object manager or the
// volume — its policy only stops *writing* (§III) — so every mechanism
// still works, just with larger time settings and lower TR than local.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "exec/campaign.h"

namespace {

using namespace mes;

constexpr std::size_t kBits = 20000;

struct PaperRow {
  double ber_pct;
  double tr_kbps;
};

PaperRow paper_row(Mechanism m)
{
  switch (m) {
    case Mechanism::flock: return {0.642, 6.946};
    case Mechanism::file_lock_ex: return {0.700, 7.181};
    case Mechanism::mutex: return {0.701, 7.109};
    case Mechanism::semaphore: return {0.731, 4.338};
    case Mechanism::event: return {0.583, 12.383};
    case Mechanism::waitable_timer: return {0.610, 10.458};
    default: return {0, 0};
  }
}

void print_table()
{
  mes::bench::print_header("Channel performance, CROSS-SANDBOX scenario",
                           "Table V of MES-Attacks, DAC'23");
  TextTable table({"Attack method", "Timeset(us)", "BER(%)", "TR(kb/s)",
                   "paper BER(%)", "paper TR(kb/s)", "sync"});
  exec::ExperimentPlan plan;
  plan.mechanisms = {
      Mechanism::flock,     Mechanism::file_lock_ex,
      Mechanism::mutex,     Mechanism::semaphore,
      Mechanism::event,     Mechanism::waitable_timer,
  };
  plan.scenarios = {{Scenario::cross_sandbox, HypervisorType::none}};
  plan.payload_bits = kBits;
  plan.seed_base = 0x7ab1e05;
  // Keep the pre-campaign per-mechanism seeds so the published table
  // values are unchanged by the refactor.
  plan.tweak = [](ExperimentConfig& cfg, const exec::CellCoord&) {
    cfg.seed = 0x7ab1e05 + static_cast<std::uint64_t>(cfg.mechanism);
  };
  const exec::CampaignResult result = exec::CampaignRunner{}.run(plan);
  for (const exec::CellResult& cell : result.cells) {
    const ChannelReport& rep = cell.report;
    const Mechanism m = cell.cell.config.mechanism;
    const PaperRow paper = paper_row(m);
    table.add_row({to_string(m),
                   mes::bench::timeset_string(m, cell.cell.config.timing),
                   rep.ok ? TextTable::num(rep.ber_percent(), 3) : "-",
                   rep.ok ? TextTable::num(rep.throughput_kbps(), 3) : "-",
                   TextTable::num(paper.ber_pct, 3),
                   TextTable::num(paper.tr_kbps, 3),
                   rep.ok ? (rep.sync_ok ? "ok" : "FAIL")
                          : rep.failure_reason});
  }
  table.print();
  std::printf(
      "\nExpected shape: same ordering as Table IV (cooperation beats\n"
      "contention, Semaphore slowest), each channel slightly slower and\n"
      "noisier than its local counterpart.\n");
}

void BM_SandboxTransmission(benchmark::State& state)
{
  const auto m = static_cast<Mechanism>(state.range(0));
  ExperimentConfig cfg;
  cfg.mechanism = m;
  cfg.scenario = Scenario::cross_sandbox;
  cfg.timing = paper_timeset(m, Scenario::cross_sandbox);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(mes::bench::run_random(cfg, 512).ber);
  }
}
BENCHMARK(BM_SandboxTransmission)
    ->Arg(static_cast<int>(Mechanism::event))
    ->Arg(static_cast<int>(Mechanism::flock))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
