// Ablation: forward error correction over a degraded channel.
//
// The paper runs its channels raw at their tuned sweet spots; an
// attacker forced off those settings (mitigation fuzz, a hostile ti)
// can trade throughput for reliability with the codec's Hamming(7,4) +
// interleaver layer. This bench runs channels at degraded operating
// points and compares raw vs FEC-protected residual error rates against
// the BSC capacity ceiling.
#include <benchmark/benchmark.h>

#include "analysis/capacity.h"
#include "bench/bench_common.h"
#include "codec/fec.h"

namespace {

using namespace mes;

struct OperatingPoint {
  const char* name;
  Mechanism mechanism;
  double t1_or_tw0_us;
  double t0_us;
  double interval_us;
};

void run_point(TextTable& table, const OperatingPoint& point)
{
  ExperimentConfig cfg;
  cfg.mechanism = point.mechanism;
  cfg.scenario = Scenario::local;
  if (class_of(point.mechanism) == ChannelClass::contention) {
    cfg.timing.t1 = Duration::us(point.t1_or_tw0_us);
    cfg.timing.t0 = Duration::us(point.t0_us);
  } else {
    cfg.timing.t0 = Duration::us(point.t1_or_tw0_us);
    cfg.timing.interval = Duration::us(point.interval_us);
  }
  cfg.seed = 0xFEC0DE;

  Rng rng{0xFEC0DE};
  const BitVec secret = BitVec::random(rng, 4096);

  // Raw transmission.
  const ChannelReport raw = run_transmission(cfg, secret);
  // FEC-protected transmission of the same secret.
  const BitVec coded = codec::fec_protect(secret, 7);
  const ChannelReport protected_rep = run_transmission(cfg, coded);
  double residual = 0.0;
  double goodput = 0.0;
  if (protected_rep.ok) {
    const auto recovered =
        codec::fec_recover(protected_rep.received_payload, 7);
    residual = static_cast<double>(secret.hamming_distance(
                   recovered.data.slice(0, secret.size()))) /
               static_cast<double>(secret.size());
    goodput = protected_rep.throughput_bps * 4.0 / 7.0;
  }
  const double capacity =
      analysis::effective_capacity_bps(raw.throughput_bps, raw.ber);
  table.add_row(
      {point.name, raw.ok ? TextTable::num(raw.ber_percent(), 3) : "-",
       raw.ok ? TextTable::num(raw.throughput_kbps(), 2) : "-",
       TextTable::num(residual * 100.0, 4),
       TextTable::num(goodput / 1000.0, 2),
       TextTable::num(capacity / 1000.0, 2)});
}

void print_table()
{
  mes::bench::print_header(
      "FEC over degraded channels: Hamming(7,4) + depth-7 interleaving",
      "extension; §VI discusses rate, information theory bounds it");
  TextTable table({"operating point", "raw BER(%)", "raw TR(kb/s)",
                   "FEC residual BER(%)", "FEC goodput(kb/s)",
                   "BSC capacity (kb/s)"});
  const OperatingPoint points[] = {
      {"Event tuned (15,65)", Mechanism::event, 15, 0, 65},
      {"Event squeezed (15,30)", Mechanism::event, 15, 0, 30},
      {"Event starved (5,30)", Mechanism::event, 5, 0, 30},
      {"flock tuned (160,60)", Mechanism::flock, 160, 60, 0},
      {"flock squeezed (110,60)", Mechanism::flock, 110, 60, 0},
  };
  for (const auto& point : points) run_point(table, point);
  table.print();
  std::printf(
      "\nExpected: at tuned points FEC is nearly free insurance (residual\n"
      "~0 at 4/7 of the rate); at squeezed points it recovers a usable\n"
      "channel from 1-15%% raw BER. The BSC capacity column is the ceiling\n"
      "any code could reach at the raw (TR, BER) point.\n");
}

void BM_FecProtectRecover(benchmark::State& state)
{
  Rng rng{1};
  const BitVec data = BitVec::random(rng, 4096);
  for (auto _ : state) {
    const BitVec coded = codec::fec_protect(data, 7);
    benchmark::DoNotOptimize(codec::fec_recover(coded, 7).data.size());
  }
}
BENCHMARK(BM_FecProtectRecover)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv)
{
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
