// Ablation: multi-pair aggregate throughput (§V.C.1's scaling argument).
//
// The paper notes an attacker controlling many Trojan/Spy pairs scales
// TR linearly ("the number of concurrent processes on our system is
// 6833, so ideally we can achieve transfer rates of tens of Mbps").
// This bench runs N independent Event-channel pairs inside one
// simulation and reports aggregate TR and mean BER.
#include <benchmark/benchmark.h>

#include "analysis/sweep.h"
#include "bench/bench_common.h"

namespace {

using namespace mes;

void print_table()
{
  mes::bench::print_header(
      "Multi-pair scaling: N concurrent Event-channel pairs",
      "§V.C.1 scaling discussion of MES-Attacks, DAC'23");
  TextTable table({"pairs (live/req)", "aggregate TR (kb/s)",
                   "TR per live pair (kb/s)", "mean BER(%)"});
  ExperimentConfig base;
  base.mechanism = Mechanism::event;
  base.scenario = Scenario::local;
  base.timing = paper_timeset(Mechanism::event, Scenario::local);
  base.seed = 0xA11E7;
  for (const std::size_t pairs : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto result = analysis::run_multi_pair(base, pairs, 2048);
    // Per-pair TR divides by the LIVE pair count: pairs whose endpoints
    // failed setup never transmitted, and counting them deflated the
    // average (the old `result.pairs = requested` bug).
    table.add_row(
        {std::to_string(result.pairs) + "/" +
             std::to_string(result.pairs_requested),
         TextTable::num(result.aggregate_bps / 1000.0, 2),
         result.pairs > 0
             ? TextTable::num(result.aggregate_bps / 1000.0 /
                                  static_cast<double>(result.pairs),
                              2)
             : "-",
         TextTable::num(result.mean_ber * 100.0, 3)});
    if (result.pairs_failed > 0) {
      std::printf("  (%zu/%zu pairs failed setup: %s)\n",
                  result.pairs_failed, result.pairs_requested,
                  result.first_failure.c_str());
    }
  }
  table.print();
  std::printf(
      "\nExpected: aggregate TR scales ~linearly in the pair count while\n"
      "per-pair TR and BER hold steady (each pair owns a private, closed\n"
      "kernel object — no cross-pair contention). Extrapolating to the\n"
      "paper's 6833-process ceiling gives tens of Mbps.\n"
      "These are N *independent* raw rounds; bench_ablation_bond shows\n"
      "the bonded link (proto/bond) turning the same pairs into faster\n"
      "reliable delivery of one payload.\n");
}

void BM_MultiPair(benchmark::State& state)
{
  ExperimentConfig base;
  base.mechanism = Mechanism::event;
  base.scenario = Scenario::local;
  base.timing = paper_timeset(Mechanism::event, Scenario::local);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    base.seed = ++seed;
    benchmark::DoNotOptimize(
        analysis::run_multi_pair(base, static_cast<std::size_t>(state.range(0)),
                                 256)
            .aggregate_bps);
  }
}
BENCHMARK(BM_MultiPair)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
