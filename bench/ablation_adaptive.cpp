// Ablation: adaptive rate control vs the fixed-rate grid (the proto
// layer's reason to exist).
//
// For each scenario this bench runs, through the campaign engine, the
// rate-vs-BER frontier of a flock link: every grid scale carries (a) a
// raw fixed round — the frontier the paper found by hand — and (b) an
// ARQ session at that fixed rate, whose goodput is what reliable
// delivery actually achieves there. Then adaptive mode runs blind: it
// calibrates against the live noise regime, picks its own rate, and
// must land within 10% of the best fixed-rate ARQ cell's bandwidth at
// equal-or-lower residual BER — replacing the grid search the fixed
// rows needed with one calibration phase.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>

#include "bench/bench_common.h"
#include "exec/campaign.h"
#include "proto/adaptive.h"
#include "proto/calibrate.h"

namespace {

using namespace mes;

constexpr std::size_t kPayloadBits = 2048;
constexpr std::size_t kRepeats = 6;
const std::vector<double> kScales = {0.25, 0.35, 0.5, 0.7, 1.0, 1.4, 2.0};

struct PointAgg {
  std::size_t cells = 0;
  double ber = 0.0;         // mean over delivered cells
  double goodput_bps = 0.0; // mean over ok cells
  std::size_t retx = 0;
  std::size_t delivered = 0;
};

// Aggregates one (protocol, timing-label) point from campaign cells.
std::map<std::string, PointAgg> aggregate(
    const std::vector<exec::CellResult>& cells)
{
  std::map<std::string, PointAgg> points;
  for (const exec::CellResult& c : cells) {
    if (!c.report.ok) continue;
    std::string key = c.cell.label;
    if (const auto pos = key.rfind('#'); pos != std::string::npos) {
      key.resize(pos);
    }
    PointAgg& p = points[key];
    ++p.cells;
    p.ber += c.report.ber;
    p.goodput_bps += c.report.throughput_bps;
    if (c.report.proto) p.retx += c.report.proto->retransmits;
    if (c.report.sync_ok) ++p.delivered;
  }
  for (auto& [key, p] : points) {
    if (p.cells == 0) continue;
    p.ber /= static_cast<double>(p.cells);
    p.goodput_bps /= static_cast<double>(p.cells);
  }
  return points;
}

std::string scale_label(double s)
{
  char buf[16];
  std::snprintf(buf, sizeof buf, "x%.2f", s);
  return buf;
}

bool run_scenario(Scenario scenario, HypervisorType hv)
{
  const Mechanism mech = Mechanism::flock;  // works across every boundary

  // The frontier: every scale at fixed + arq protocol, via the campaign
  // engine's timing and protocol axes.
  exec::ExperimentPlan plan;
  plan.mechanisms = {mech};
  plan.scenarios = {{scenario, hv}};
  plan.timings.clear();
  for (const double s : kScales) plan.timings.push_back({scale_label(s), {}});
  plan.protocols = {{"fixed", ProtocolMode::fixed},
                    {"arq", ProtocolMode::arq}};
  plan.repeats = kRepeats;
  plan.seed_base = 0xADA57;
  plan.payload_bits = kPayloadBits;
  plan.tweak = [](ExperimentConfig& cfg, const exec::CellCoord& coord) {
    cfg.timing = scale_timing(cfg.timing, kScales[coord.timing]);
  };
  const exec::CampaignResult frontier = exec::CampaignRunner{}.run(plan);

  // Adaptive mode: same link, no timing axis — it picks its own.
  exec::ExperimentPlan adaptive_plan;
  adaptive_plan.mechanisms = {mech};
  adaptive_plan.scenarios = {{scenario, hv}};
  adaptive_plan.protocols = {{"adaptive", ProtocolMode::adaptive}};
  adaptive_plan.repeats = kRepeats;
  adaptive_plan.seed_base = 0xADA57;
  adaptive_plan.payload_bits = kPayloadBits;
  const exec::CampaignResult adapted =
      exec::CampaignRunner{}.run(adaptive_plan);

  const auto points = aggregate(frontier.cells);

  std::printf("\n-- %s / %s --\n", to_string(mech), to_string(scenario));
  TextTable table({"scale", "fixed BER(%)", "fixed TR(kb/s)",
                   "ARQ goodput(kb/s)", "ARQ retx", "delivered"});
  double best_arq_bps = 0.0;
  double best_arq_ber = 1.0;
  std::string best_label;
  for (const double s : kScales) {
    const std::string base = std::string{to_string(mech)} + "/" +
                             to_string(scenario) +
                             (hv != HypervisorType::none
                                  ? std::string{"@"} + to_string(hv)
                                  : std::string{}) +
                             "/" + scale_label(s);
    const auto fixed_it = points.find(base + "/fixed");
    const auto arq_it = points.find(base + "/arq");
    const PointAgg* fx =
        fixed_it != points.end() ? &fixed_it->second : nullptr;
    const PointAgg* aq = arq_it != points.end() ? &arq_it->second : nullptr;
    table.add_row(
        {scale_label(s),
         fx ? TextTable::num(fx->ber * 100.0, 2) : "-",
         fx ? TextTable::num(fx->goodput_bps / 1000.0, 3) : "-",
         aq ? TextTable::num(aq->goodput_bps / 1000.0, 3) : "-",
         aq ? std::to_string(aq->retx) : "-",
         aq ? std::to_string(aq->delivered) + "/" + std::to_string(aq->cells)
            : "-"});
    if (aq && aq->delivered == aq->cells &&
        aq->goodput_bps > best_arq_bps) {
      best_arq_bps = aq->goodput_bps;
      best_arq_ber = aq->ber;
      best_label = scale_label(s);
    }
  }
  table.print();

  PointAgg adaptive_agg;
  double mean_scale = 0.0;
  std::size_t scale_n = 0;
  for (const exec::CellResult& c : adapted.cells) {
    if (!c.report.ok) continue;
    ++adaptive_agg.cells;
    adaptive_agg.ber += c.report.ber;
    adaptive_agg.goodput_bps += c.report.throughput_bps;
    if (c.report.proto) adaptive_agg.retx += c.report.proto->retransmits;
    if (c.report.sync_ok) ++adaptive_agg.delivered;
    const TimingConfig paper = paper_timeset(mech, scenario);
    if (paper.t1 > Duration::zero()) {
      mean_scale += c.report.timing.t1 / paper.t1;
      ++scale_n;
    }
  }
  if (adaptive_agg.cells > 0) {
    adaptive_agg.ber /= static_cast<double>(adaptive_agg.cells);
    adaptive_agg.goodput_bps /= static_cast<double>(adaptive_agg.cells);
  }

  std::printf("adaptive : goodput %.3f kb/s, residual BER %.2f%%, "
              "delivered %zu/%zu, mean chosen scale x%.2f\n",
              adaptive_agg.goodput_bps / 1000.0, adaptive_agg.ber * 100.0,
              adaptive_agg.delivered, adaptive_agg.cells,
              scale_n ? mean_scale / static_cast<double>(scale_n) : 0.0);
  std::printf("best grid: %s at %.3f kb/s (residual BER %.2f%%)\n",
              best_label.c_str(), best_arq_bps / 1000.0,
              best_arq_ber * 100.0);

  const bool bandwidth_ok =
      best_arq_bps > 0.0 && adaptive_agg.goodput_bps >= 0.9 * best_arq_bps;
  const bool ber_ok = adaptive_agg.ber <= best_arq_ber + 1e-12;
  std::printf("verdict  : %s (bandwidth %.0f%% of grid best, BER %s)\n",
              bandwidth_ok && ber_ok ? "PASS" : "FAIL",
              best_arq_bps > 0.0
                  ? 100.0 * adaptive_agg.goodput_bps / best_arq_bps
                  : 0.0,
              ber_ok ? "equal-or-lower" : "HIGHER");
  return bandwidth_ok && ber_ok;
}

void BM_CalibrateLink(benchmark::State& state)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.seed = 0xCA1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::calibrate_link(cfg).ok);
  }
}
BENCHMARK(BM_CalibrateLink)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  mes::bench::print_header(
      "Adaptive rate control vs the fixed-rate grid",
      "the Timeset grid searches behind Tables IV-VI, automated");

  bool all_pass = true;
  all_pass &= run_scenario(Scenario::local, HypervisorType::none);
  all_pass &= run_scenario(Scenario::cross_sandbox, HypervisorType::none);
  all_pass &= run_scenario(Scenario::cross_vm, HypervisorType::type1);

  std::printf("\noverall  : %s — calibration %s the per-cell grid search\n",
              all_pass ? "PASS" : "FAIL",
              all_pass ? "replaces" : "does not yet replace");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return all_pass ? 0 : 1;
}
