// Ablation: the distributed mutual-exclusion channel family over the
// multi-node fabric (src/net + src/dme).
//
// Part 1 — protocol x topology matrix: the three DME protocols
// (simple broadcast, Ricart–Agrawala, Maekawa quorums) against the
// cluster scenarios — rack cells of 3/5/7 nodes, a WAN cell, the lossy
// WAN cell — plus `local` to show the inverse of Table VI: a channel
// whose physical layer is lock-request latency over a fabric cannot run
// without one.
//
// Part 2 — ARQ delivery proof (the acceptance gate): every protocol
// delivers a payload bit-exactly over the lossy 5-node WAN cell (2%
// loss, reordering) — retransmission at the agent layer plus ARQ at the
// protocol layer absorb the fabric's drops.
//
// Part 3 — the drift experiment: on `dme-slow-quorum-5` a node sitting
// in both endpoints' Maekawa quorums turns 6x slow mid-transfer, which
// pushes even uncontended acquisitions past the calibrated threshold
// while leaving the two latency levels separable at a slower rate.
// The drift-aware adaptive link re-probes and recovers goodput (scored
// against a healthy `dme-rack-5` run on the same seed); the frozen link
// keeps a stale operating point.
//
// Emits BENCH_dme.json (cwd) so CI archives a perf trajectory against
// bench/dme_baseline.json.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sweep.h"
#include "bench/bench_common.h"
#include "net/fabric.h"
#include "proto/adaptive.h"
#include "scenario/registry.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace {

using namespace mes;

constexpr std::uint64_t kSeed = 0xD1573B;
constexpr std::size_t kMatrixBits = 512;
constexpr std::size_t kArqBits = 512;
constexpr std::size_t kDriftBits = 4096;
constexpr std::size_t kDriftRepeats = 3;

const std::vector<Mechanism> kDmeMechanisms = {
    Mechanism::dme_broadcast,
    Mechanism::dme_ricart,
    Mechanism::dme_maekawa,
};

const std::vector<std::string> kMatrixScenarios = {
    "local",     "dme-rack-3",      "dme-rack-5",
    "dme-rack-7", "dme-wan-5",      "dme-lossy-wan-5"};

// --- Part 1: protocol x topology matrix --------------------------------

struct MatrixOut {
  std::vector<analysis::ScenarioMatrixCell> cells;
};

MatrixOut run_matrix()
{
  MatrixOut out;
  out.cells = analysis::scenario_matrix(kDmeMechanisms, kMatrixScenarios,
                                        ProtocolMode::adaptive, kMatrixBits,
                                        kSeed);

  TextTable table({"scenario", "protocol", "delivered", "goodput(kb/s)",
                   "residual BER(%)", "state"});
  for (const analysis::ScenarioMatrixCell& c : out.cells) {
    table.add_row(
        {c.scenario, to_string(c.mechanism), c.delivered ? "yes" : "no",
         c.ran ? TextTable::num(c.goodput_bps / 1000.0, 3) : "-",
         c.ran ? TextTable::num(c.ber * 100.0, 2) : "-",
         c.ran ? (c.delivered ? "ok" : "UNDELIVERED") : c.failure});
  }
  table.print();

  std::size_t survivors = 0;
  for (const auto& c : out.cells) {
    if (c.delivered) ++survivors;
  }
  std::printf("matrix   : %zu/%zu (protocol, topology) cells deliver through "
              "the adaptive stack\n",
              survivors, out.cells.size());
  return out;
}

// --- Part 2: ARQ bit-exact delivery over the lossy WAN -----------------

struct ArqCell {
  Mechanism mechanism = Mechanism::dme_broadcast;
  bool bit_exact = false;
  double goodput_bps = 0.0;
  std::size_t frame_sends = 0;
  std::size_t retransmits = 0;
  std::string failure;
};

struct ArqOut {
  std::vector<ArqCell> cells;
  bool pass = false;
};

ArqOut run_arq()
{
  std::printf("\n-- ARQ bit-exact delivery over dme-lossy-wan-5 "
              "(%zu payload bits, 2%% loss) --\n",
              static_cast<std::size_t>(kArqBits));
  TextTable table({"protocol", "bit-exact", "goodput(kb/s)", "frame sends",
                   "retransmits"});

  ArqOut out;
  std::size_t exact = 0;
  for (const Mechanism m : kDmeMechanisms) {
    ExperimentConfig cfg;
    cfg.mechanism = m;
    cfg.scenario_name = "dme-lossy-wan-5";
    cfg.timing = paper_timeset(m, Scenario::cross_vm);
    cfg.seed = kSeed + 0x77;

    Rng rng{cfg.seed ^ 0xA12FULL};
    const BitVec payload = BitVec::random(rng, kArqBits);
    const ChannelReport rep = proto::run_arq_transmission(cfg, payload);

    ArqCell cell;
    cell.mechanism = m;
    cell.bit_exact = rep.ok && rep.sync_ok && rep.received_payload == payload;
    cell.goodput_bps = rep.throughput_bps;
    if (rep.proto) {
      cell.frame_sends = rep.proto->frame_sends;
      cell.retransmits = rep.proto->retransmits;
    }
    if (!rep.ok) cell.failure = rep.failure_reason;
    if (cell.bit_exact) ++exact;
    table.add_row({to_string(m), cell.bit_exact ? "yes" : "NO",
                   TextTable::num(cell.goodput_bps / 1000.0, 3),
                   std::to_string(cell.frame_sends),
                   std::to_string(cell.retransmits)});
    out.cells.push_back(cell);
  }
  table.print();

  // The gate: all three protocols must deliver bit-exactly despite the
  // lossy fabric.
  out.pass = exact == kDmeMechanisms.size();
  std::printf("arq      : %zu/%zu protocols bit-exact over the lossy WAN\n",
              exact, kDmeMechanisms.size());
  std::printf("verdict  : %s (gate: all protocols bit-exact)\n",
              out.pass ? "PASS" : "FAIL");
  return out;
}

// --- Part 3: the slow-quorum-member drift experiment -------------------

// The fabric slowdown never advances the noise model's phase id, so the
// DriftMonitor's per-phase split can't separate pre/post here; recovery
// is measured instead against a healthy cluster of the same size
// (`dme-rack-5`) run on the same seed.
struct DriftCell {
  bool delivered = false;
  double overall_bps = 0.0;    // delivered payload bits / total elapsed
  double recovered_bps = 0.0;  // steady-state after the last recal
  std::size_t recals = 0;
  // Share of the healthy-cluster goodput the session ended up at: the
  // post-recalibration steady state when it re-tuned, the whole-session
  // rate when it never did (frozen mode, or drift that never fired).
  double recovery(double healthy_bps) const
  {
    if (healthy_bps <= 0.0 || !delivered) return 0.0;
    const double rate = recals > 0 ? recovered_bps : overall_bps;
    return rate / healthy_bps;
  }
};

DriftCell run_drift_cell(std::uint64_t seed, const char* scenario,
                         bool drift_enabled)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::dme_maekawa;  // node 2 sits in both quorums
  cfg.scenario_name = scenario;
  cfg.timing = paper_timeset(Mechanism::dme_maekawa, Scenario::local);
  cfg.seed = seed;

  Rng rng{seed ^ 0xD21FULL};
  const BitVec payload = BitVec::random(rng, kDriftBits);

  proto::AdaptiveOptions opt;
  opt.drift.enabled = drift_enabled;
  // Short calibration (no trial-frame refinement): the full sweep takes
  // ~40s of link time on these slow cells, which would swallow the 8s
  // slowdown onset; the experiment needs the onset to land mid-payload,
  // after a *clean* calibration.
  opt.calibration.probe_symbols = 64;
  opt.calibration.refine_candidates = 0;
  const ChannelReport rep = proto::run_adaptive_transmission(cfg, payload, opt);

  DriftCell cell;
  cell.delivered = rep.ok && rep.sync_ok;
  cell.overall_bps = rep.throughput_bps;
  if (rep.proto) {
    cell.recals = rep.proto->recalibrations;
    cell.recovered_bps = rep.proto->recovered_goodput_bps;
  }
  return cell;
}

struct DriftOut {
  bool pass = false;
  double mean_recovery_on = 0.0;
  double mean_post_ratio_off = 0.0;
  std::size_t delivered_on = 0;
  std::size_t delivered_off = 0;
};

DriftOut run_drift()
{
  std::printf("\n-- dme-slow-quorum-5: drift-aware vs frozen calibration "
              "(Maekawa, %zu bits, shared member 6x slow at 8s) --\n",
              static_cast<std::size_t>(kDriftBits));
  TextTable table({"seed", "mode", "delivered", "healthy(kb/s)",
                   "overall(kb/s)", "recovered(kb/s)", "recals", "recovery"});

  DriftOut out;
  double sum_on = 0.0;
  double sum_off = 0.0;
  for (std::size_t r = 0; r < kDriftRepeats; ++r) {
    const std::uint64_t seed = kSeed + 0x1000 * (r + 1);
    const DriftCell healthy = run_drift_cell(seed, "dme-rack-5", true);
    const DriftCell on = run_drift_cell(seed, "dme-slow-quorum-5", true);
    const DriftCell off = run_drift_cell(seed, "dme-slow-quorum-5", false);
    sum_on += on.recovery(healthy.overall_bps);
    sum_off += off.recovery(healthy.overall_bps);
    if (on.delivered) ++out.delivered_on;
    if (off.delivered) ++out.delivered_off;
    for (const auto& [mode, c] :
         {std::pair<const char*, const DriftCell&>{"drift", on},
          std::pair<const char*, const DriftCell&>{"frozen", off}}) {
      table.add_row(
          {std::to_string(seed), mode, c.delivered ? "yes" : "NO",
           TextTable::num(healthy.overall_bps / 1000.0, 3),
           TextTable::num(c.overall_bps / 1000.0, 3),
           c.recals > 0 ? TextTable::num(c.recovered_bps / 1000.0, 3) : "-",
           std::to_string(c.recals),
           TextTable::num(100.0 * c.recovery(healthy.overall_bps), 0) + "%"});
    }
  }
  table.print();

  out.mean_recovery_on = sum_on / kDriftRepeats;
  out.mean_post_ratio_off = sum_off / kDriftRepeats;

  // The claim: the drift-aware link delivers every session and recovers
  // a solid share of its healthy-cluster goodput over the slowed fabric;
  // it must beat (or match, when the stale point survives) the frozen
  // one. The bar sits below the physics ceiling: with the shared quorum
  // member 6x slow, every probe pays ~1.3ms extra through it, which
  // caps the recovered rate near half the healthy one.
  const bool recovery_ok =
      out.delivered_on == kDriftRepeats && out.mean_recovery_on >= 0.35;
  const bool beats_frozen =
      out.delivered_off < kDriftRepeats ||
      out.mean_recovery_on >= out.mean_post_ratio_off;
  out.pass = recovery_ok && beats_frozen;

  std::printf("drift    : mean recovery %.0f%% (delivered %zu/%zu); frozen "
              "link keeps %.0f%% (delivered %zu/%zu)\n",
              100.0 * out.mean_recovery_on, out.delivered_on, kDriftRepeats,
              100.0 * out.mean_post_ratio_off, out.delivered_off,
              kDriftRepeats);
  std::printf("verdict  : %s (recovery %s 35%% bar; drift %s frozen)\n",
              out.pass ? "PASS" : "FAIL",
              recovery_ok ? "clears" : "MISSES",
              beats_frozen ? "beats" : "DID NOT BEAT");
  return out;
}

// --- emission ----------------------------------------------------------

// Strict-JSON double: non-finite metrics emit null, never `nan`/`inf`
// (the BENCH_*.json artifact convention).
void json_num(std::ostream& out, double v)
{
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

std::string to_json(const MatrixOut& matrix, const ArqOut& arq,
                    const DriftOut& drift)
{
  std::ostringstream out;
  out << "{\"matrix\":[";
  for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
    const analysis::ScenarioMatrixCell& c = matrix.cells[i];
    if (i > 0) out << ",";
    out << "{\"scenario\":\"" << c.scenario << "\",\"mechanism\":\""
        << to_string(c.mechanism) << "\",\"ran\":"
        << (c.ran ? "true" : "false")
        << ",\"delivered\":" << (c.delivered ? "true" : "false")
        << ",\"goodput_bps\":";
    json_num(out, c.ran ? c.goodput_bps : 0.0);
    out << ",\"ber\":";
    json_num(out, c.ran ? c.ber : 0.0);
    out << "}";
  }
  out << "],\"arq\":[";
  for (std::size_t i = 0; i < arq.cells.size(); ++i) {
    const ArqCell& c = arq.cells[i];
    if (i > 0) out << ",";
    out << "{\"mechanism\":\"" << to_string(c.mechanism)
        << "\",\"bit_exact\":" << (c.bit_exact ? "true" : "false")
        << ",\"goodput_bps\":";
    json_num(out, c.goodput_bps);
    out << ",\"frame_sends\":" << c.frame_sends
        << ",\"retransmits\":" << c.retransmits << "}";
  }
  out << "],\"drift\":{\"mean_recovery\":";
  json_num(out, drift.mean_recovery_on);
  out << ",\"frozen_post_ratio\":";
  json_num(out, drift.mean_post_ratio_off);
  out << ",\"delivered_drift\":" << drift.delivered_on
      << ",\"delivered_frozen\":" << drift.delivered_off
      << ",\"repeats\":" << kDriftRepeats
      << ",\"pass\":" << (drift.pass ? "true" : "false")
      << "},\"pass\":" << ((arq.pass && drift.pass) ? "true" : "false")
      << "}\n";
  return out.str();
}

// --- microbenchmarks ---------------------------------------------------

void BM_FabricSendDeliver(benchmark::State& state)
{
  sim::Simulator sim{kSeed};
  net::ClusterParams params;
  params.size = 5;
  params.link_base = Duration::us(120);
  net::Fabric fabric{sim, params, kSeed};
  net::Message msg{0, 1, 1, 0, 42};
  for (auto _ : state) {
    const bool sent = fabric.send(msg);
    benchmark::DoNotOptimize(sent);
    benchmark::DoNotOptimize(sim.run(1'000));
  }
}
BENCHMARK(BM_FabricSendDeliver);

void BM_DmeTransmission(benchmark::State& state)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::dme_ricart;
  cfg.scenario_name = "dme-rack-5";
  cfg.timing = paper_timeset(Mechanism::dme_ricart, Scenario::local);
  cfg.seed = kSeed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mes::bench::run_random(cfg, 256).ok);
  }
}
BENCHMARK(BM_DmeTransmission)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  mes::bench::print_header(
      "Distributed mutual exclusion over the multi-node fabric",
      "MES contention channels generalized to cluster-wide locks "
      "(broadcast / Ricart-Agrawala / Maekawa)");

  const MatrixOut matrix = run_matrix();
  const ArqOut arq = run_arq();
  const DriftOut drift = run_drift();

  const std::string json = to_json(matrix, arq, drift);
  std::ofstream out{"BENCH_dme.json"};
  if (out) {
    out << json;
    std::printf("\nwrote BENCH_dme.json\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return (arq.pass && drift.pass) ? 0 : 1;
}
