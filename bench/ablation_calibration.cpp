// Ablation: cross-cell calibration reuse vs per-cell full sweeps.
//
// A large adaptive campaign re-measures the same link once per cell:
// every seed replicate of a (mechanism, scenario) point sweeps the full
// rate grid even though the link physics have not changed. The warm
// policy (proto/cal_cache) elects the first cell of each link as the
// leader, calibrates it fully, and lets the followers confirm the
// published pick with a single probe round (no rehearsal trial — the
// delivery that follows is itself an ARQ run).
//
// This bench runs one >=500-cell adaptive plan both ways and reports:
//
//   calibration_speedup — summed simulated calibration time, full/warm
//                         (deterministic; the probes that no longer run);
//   wall_speedup        — whole-campaign wall-clock ratio (jitters with
//                         the host, archived for the trajectory);
//   pick_agreement      — fraction of cells running at their link
//                         leader's published pick (drift-retuned cells
//                         excluded; see the derivation in main());
//   payloads_bit_exact  — every warm cell delivered the identical bits.
//
// Emits BENCH_calibration.json (cwd); CI soft-checks it against the
// committed bench/calibration_baseline.json like the engine bench.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exec/campaign.h"
#include "proto/calibrate.h"
#include "util/table.h"

namespace {

using namespace mes;

constexpr std::size_t kRepeats = 30;
constexpr std::size_t kPayloadBits = 256;

// 6 mechanisms x 3 scenarios x 30 repeats = 540 adaptive cells.
exec::ExperimentPlan make_plan(CalibrationPolicy policy)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::flock,     Mechanism::file_lock_ex,
                     Mechanism::mutex,     Mechanism::semaphore,
                     Mechanism::event,     Mechanism::waitable_timer};
  plan.scenarios = {exec::named_scenario("local"),
                    exec::named_scenario("cross-sandbox"),
                    exec::named_scenario("noisy-local")};
  plan.protocols = {{"adaptive", ProtocolMode::adaptive}};
  plan.repeats = kRepeats;
  plan.seed_base = 0x5CA1E;
  plan.payload_bits = kPayloadBits;
  plan.base.calibration = policy;
  return plan;
}

struct CampaignCost {
  double wall_s = 0.0;
  double calibration_us = 0.0;  // simulated probe/trial time, summed
  std::uint64_t probes = 0;
  std::size_t cells_ok = 0;
  std::size_t warm_cells = 0;
  std::size_t fallback_cells = 0;
  std::vector<exec::CellResult> cells;
};

// mes-lint: allow(no-wallclock) this bench measures REAL campaign wall time; host time is the measurand, not a simulated result
CampaignCost run_policy(CalibrationPolicy policy)
{
  CampaignCost cost;
  // mes-lint: allow(no-wallclock) this bench measures REAL campaign wall time; host time is the measurand, not a simulated result
  const auto start = std::chrono::steady_clock::now();
  exec::CampaignResult result =
      exec::CampaignRunner{}.run(make_plan(policy));
  // mes-lint: allow(no-wallclock) this bench measures REAL campaign wall time; host time is the measurand, not a simulated result
  const auto stop = std::chrono::steady_clock::now();
  cost.wall_s = std::chrono::duration<double>(stop - start).count();
  for (const exec::CellResult& c : result.cells) {
    if (!c.report.ok) continue;
    ++cost.cells_ok;
    if (!c.report.proto) continue;
    cost.calibration_us += c.report.proto->calibration_time.to_us();
    cost.probes += c.report.proto->calibration_probes;
    if (c.report.proto->calibration_source == CalibrationSource::warm) {
      ++cost.warm_cells;
    }
    if (c.report.proto->calibration_source == CalibrationSource::fallback) {
      ++cost.fallback_cells;
    }
  }
  cost.cells = std::move(result.cells);
  return cost;
}

void emit_json(std::size_t cells, const CampaignCost& full,
               const CampaignCost& warm, double pick_agreement,
               bool payloads_bit_exact)
{
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\":\"ablation_calibration\",\n"
      " \"cells\":%zu,\n"
      " \"full\":{\"wall_s\":%.3f,\"calibration_us\":%.0f,"
      "\"probes\":%llu},\n"
      " \"warm\":{\"wall_s\":%.3f,\"calibration_us\":%.0f,"
      "\"probes\":%llu,\"warm_cells\":%zu,\"fallback_cells\":%zu},\n"
      " \"calibration_speedup\":%.2f,\n"
      " \"wall_speedup\":%.2f,\n"
      " \"pick_agreement\":%.4f,\n"
      " \"payloads_bit_exact\":%s}\n",
      cells, full.wall_s, full.calibration_us,
      static_cast<unsigned long long>(full.probes), warm.wall_s,
      warm.calibration_us, static_cast<unsigned long long>(warm.probes),
      warm.warm_cells, warm.fallback_cells,
      warm.calibration_us > 0.0 ? full.calibration_us / warm.calibration_us
                                : 0.0,
      warm.wall_s > 0.0 ? full.wall_s / warm.wall_s : 0.0, pick_agreement,
      payloads_bit_exact ? "true" : "false");
  std::ofstream out{"BENCH_calibration.json"};
  if (out) {
    out << buf;
    std::printf("\nwrote BENCH_calibration.json\n");
  }
}

void BM_WarmCampaignSlice(benchmark::State& state)
{
  // A one-link slice of the big plan, for the ns/op trajectory.
  proto::CalibrationPick pick;
  {
    ExperimentConfig cfg;
    cfg.mechanism = Mechanism::flock;
    cfg.scenario = Scenario::local;
    cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
    cfg.seed = 0xCA1;
    const proto::Calibration cal = proto::calibrate_link(cfg);
    pick = {cal.grid_index, cal.margin, cal.symbol_error};
  }
  ExperimentConfig follower;
  follower.mechanism = Mechanism::flock;
  follower.scenario = Scenario::local;
  follower.timing = paper_timeset(Mechanism::flock, Scenario::local);
  follower.seed = 0xCA2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proto::calibrate_link_warm(follower, {}, {}, pick).ok);
  }
}
BENCHMARK(BM_WarmCampaignSlice)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  mes::bench::print_header(
      "Calibration reuse ablation: warm leader/follower starts vs "
      "per-cell full sweeps",
      "adaptive campaign grids re-measure one link once per cell");

  const CampaignCost full = run_policy(CalibrationPolicy::full);
  const CampaignCost warm = run_policy(CalibrationPolicy::warm);
  const std::size_t cells = full.cells.size();

  // Pick agreement: does each warm cell run at its link leader's
  // published pick? A cell's reported timing is the *post-drift*
  // effective rate (proto/drift retunes mid-delivery), so the published
  // pick is re-derived here by running each link leader's full sweep --
  // bit-identical to the in-campaign leader by the absolute-grid-index
  // seed mixing (calibrate.h) -- and drift-recalibrated cells are
  // excluded from the comparison: their final rate left the pick for
  // reasons the warm scheme does not control. Payload bit-exactness
  // compares every cell's received bits against the full-policy run of
  // the identical cell.
  std::map<std::string, TimingConfig> link_pick;
  std::size_t agree = 0, compared = 0, drift_skipped = 0;
  bool payloads_bit_exact = true;
  for (std::size_t i = 0; i < cells && i < warm.cells.size(); ++i) {
    const ChannelReport& f = full.cells[i].report;
    const ChannelReport& w = warm.cells[i].report;
    if (!f.ok || !w.ok) continue;
    if (!(w.received_payload == f.received_payload)) {
      payloads_bit_exact = false;
    }
    std::string link = warm.cells[i].cell.label;
    if (const auto pos = link.rfind('#'); pos != std::string::npos) {
      link.resize(pos);
    }
    auto it = link_pick.find(link);
    if (it == link_pick.end()) {
      // The first cell of a link in list order IS the campaign leader
      // (assign_calibration_leaders elects by list order).
      const proto::Calibration lead =
          proto::calibrate_link(warm.cells[i].cell.config);
      it = link_pick.emplace(std::move(link), lead.timing).first;
    }
    if (w.proto && w.proto->recalibrations > 0) {
      ++drift_skipped;
      continue;
    }
    ++compared;
    const bool same = w.timing.t1 == it->second.t1 &&
                      w.timing.t0 == it->second.t0 &&
                      w.timing.interval == it->second.interval;
    if (same) {
      ++agree;
    } else if (std::getenv("MES_BENCH_DEBUG")) {
      std::printf("DISAGREE %s src=%d t1=%lld pick_t1=%lld probes=%zu\n",
                  warm.cells[i].cell.label.c_str(),
                  static_cast<int>(w.proto ? w.proto->calibration_source
                                           : CalibrationSource::full),
                  static_cast<long long>(w.timing.t1.count_ns()),
                  static_cast<long long>(it->second.t1.count_ns()),
                  w.proto ? static_cast<std::size_t>(
                                w.proto->calibration_probes)
                          : 0u);
    }
  }
  const double pick_agreement =
      compared > 0 ? static_cast<double>(agree) / compared : 0.0;

  mes::TextTable table({"policy", "cells ok", "probes", "calibration(s)",
                        "wall(s)", "warm/fallback"});
  table.add_row({"full", std::to_string(full.cells_ok),
                 std::to_string(full.probes),
                 mes::TextTable::num(full.calibration_us / 1e6, 3),
                 mes::TextTable::num(full.wall_s, 2), "-"});
  table.add_row({"warm", std::to_string(warm.cells_ok),
                 std::to_string(warm.probes),
                 mes::TextTable::num(warm.calibration_us / 1e6, 3),
                 mes::TextTable::num(warm.wall_s, 2),
                 std::to_string(warm.warm_cells) + "/" +
                     std::to_string(warm.fallback_cells)});
  table.print();

  const double cal_speedup =
      warm.calibration_us > 0.0 ? full.calibration_us / warm.calibration_us
                                : 0.0;
  std::printf("calibration speedup : %.2fx (simulated probe time)\n",
              cal_speedup);
  std::printf("wall speedup        : %.2fx\n",
              warm.wall_s > 0.0 ? full.wall_s / warm.wall_s : 0.0);
  std::printf("pick agreement      : %.1f%% (%zu/%zu cells, %zu "
              "drift-retuned cells excluded)\n",
              100.0 * pick_agreement, agree, compared, drift_skipped);
  std::printf("payloads bit-exact  : %s\n",
              payloads_bit_exact ? "yes" : "NO");
  const bool pass = cal_speedup >= 3.0 && pick_agreement >= 0.95 &&
                    payloads_bit_exact;
  std::printf("verdict             : %s\n", pass ? "PASS" : "FAIL");

  emit_json(cells, full, warm, pick_agreement, payloads_bit_exact);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pass ? 0 : 1;
}
