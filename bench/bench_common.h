// Shared helpers for the benchmark harness binaries.
//
// Every bench prints its paper table/figure reproduction first (plain
// text, deterministic), then runs a small google-benchmark suite over
// the primitives involved so `--benchmark_*` flags work as usual.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/spec.h"
#include "core/runner.h"
#include "util/rng.h"
#include "util/table.h"

namespace mes::bench {

// One full framed transmission of `bits` random payload bits, through
// the public façade (the session's first transfer runs on cfg.seed
// exactly, so tables stay byte-identical to the direct runner call).
inline ChannelReport run_random(ExperimentConfig cfg, std::size_t bits)
{
  Rng payload_rng{cfg.seed ^ 0xabcdef12345ULL};
  const std::size_t width = cfg.timing.symbol_bits;
  const std::size_t n = bits - bits % (width == 0 ? 1 : width);
  const BitVec payload = BitVec::random(payload_rng, n);
  api::Session session = api::Session::open(api::to_specs(cfg));
  // A bench config the spec layer rejects is a harness bug; fail loudly
  // instead of recording a zeroed report as a clean measurement.
  if (!session.is_open()) {
    throw std::runtime_error{"bench config failed spec validation: " +
                             session.error()};
  }
  return session.transfer(payload);
}

inline std::string timeset_string(Mechanism m, const TimingConfig& t)
{
  char buf[96];
  if (class_of(m) == ChannelClass::contention) {
    std::snprintf(buf, sizeof buf, "tt1=%.0f tt0=%.0f", t.t1.to_us(),
                  t.t0.to_us());
  } else {
    std::snprintf(buf, sizeof buf, "tw0=%.0f ti=%.0f", t.t0.to_us(),
                  t.interval.to_us());
  }
  return buf;
}

inline void print_header(const char* title, const char* paper_ref)
{
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace mes::bench
