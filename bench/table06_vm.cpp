// Reproduces Table VI: channel performance in the cross-VM scenario,
// plus the §V.C.3 mechanism-visibility findings behind it:
//
//  * named kernel objects (Event, Mutex, Semaphore, Timer) live in
//    session-private namespaces — they never resolve across a VM
//    boundary, so those channels fail at setup;
//  * file-backed locks survive only when the hypervisor gives both
//    guests a view of one host volume: type-1 (Hyper-V / KVM with a
//    shared mount) does, type-2 (VMware Workstation) does not.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "exec/campaign.h"

namespace {

using namespace mes;

constexpr std::size_t kBits = 20000;

void print_table()
{
  mes::bench::print_header("Channel performance, CROSS-VM scenario",
                           "Table VI of MES-Attacks, DAC'23");

  std::printf("\n-- type-1 hypervisor (Hyper-V / KVM; shared host volume) --\n");
  TextTable table({"Attack method", "Timeset(us)", "BER(%)", "TR(kb/s)",
                   "paper BER(%)", "paper TR(kb/s)", "status"});
  exec::ExperimentPlan type1;
  type1.mechanisms = {
      Mechanism::flock,     Mechanism::file_lock_ex,
      Mechanism::mutex,     Mechanism::semaphore,
      Mechanism::event,     Mechanism::waitable_timer,
  };
  type1.scenarios = {{Scenario::cross_vm, HypervisorType::type1}};
  type1.payload_bits = kBits;
  type1.seed_base = 0x7ab1e06;
  // Keep the pre-campaign per-mechanism seeds so the published table
  // values are unchanged by the refactor.
  type1.tweak = [](ExperimentConfig& cfg, const exec::CellCoord&) {
    cfg.seed = 0x7ab1e06 + static_cast<std::uint64_t>(cfg.mechanism);
  };
  const exec::CampaignResult r1 = exec::CampaignRunner{}.run(type1);
  for (const exec::CellResult& cell : r1.cells) {
    const ChannelReport& rep = cell.report;
    const Mechanism m = cell.cell.config.mechanism;
    const bool in_paper =
        m == Mechanism::flock || m == Mechanism::file_lock_ex;
    const double paper_ber = m == Mechanism::flock ? 0.832 : 0.713;
    const double paper_tr = m == Mechanism::flock ? 5.893 : 6.552;
    table.add_row(
        {to_string(m),
         mes::bench::timeset_string(m, cell.cell.config.timing),
         rep.ok ? TextTable::num(rep.ber_percent(), 3) : "-",
         rep.ok ? TextTable::num(rep.throughput_kbps(), 3) : "-",
         in_paper ? TextTable::num(paper_ber, 3) : "x (not usable)",
         in_paper ? TextTable::num(paper_tr, 3) : "x (not usable)",
         rep.ok ? "works" : rep.failure_reason});
  }
  table.print();

  std::printf("\n-- type-2 hypervisor (VMware Workstation; no shared volume) --\n");
  TextTable t2({"Attack method", "status"});
  exec::ExperimentPlan type2;
  type2.mechanisms = {Mechanism::flock, Mechanism::file_lock_ex,
                      Mechanism::event};
  type2.scenarios = {{Scenario::cross_vm, HypervisorType::type2}};
  type2.payload_bits = 128;
  // The historical loop used default-constructed configs (seed 1); the
  // cells all fail at setup, but keep the seed for exact reproduction.
  type2.tweak = [](ExperimentConfig& cfg, const exec::CellCoord&) {
    cfg.seed = 1;
  };
  const exec::CampaignResult r2 = exec::CampaignRunner{}.run(type2);
  for (const exec::CellResult& cell : r2.cells) {
    t2.add_row({to_string(cell.cell.config.mechanism),
                cell.report.ok ? "works (unexpected!)"
                               : cell.report.failure_reason});
  }
  t2.print();
  std::printf(
      "\nExpected: only flock and FileLockEX transmit under type-1 (their\n"
      "kernel objects are backed by files on the shared volume); every\n"
      "named-object channel fails with a namespace-visibility error; under\n"
      "type-2 nothing works at all (§V.C.3).\n");
}

void BM_CrossVmFileLock(benchmark::State& state)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::file_lock_ex;
  cfg.scenario = Scenario::cross_vm;
  cfg.hypervisor = HypervisorType::type1;
  cfg.timing = paper_timeset(cfg.mechanism, Scenario::cross_vm);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(mes::bench::run_random(cfg, 512).ber);
  }
}
BENCHMARK(BM_CrossVmFileLock)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
