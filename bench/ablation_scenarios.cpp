// Ablation: the scenario library, and drift-aware recalibration under a
// mid-transfer noise-regime change.
//
// Part 1 — survivability matrix: every mechanism against every named
// scenario in the registry (adaptive protocol), the Table VI question
// asked of the whole library: which mechanisms cross which boundary,
// and at what rate, once the host stops being stationary.
//
// Part 2 — the drift experiment: on the `regime-shift` scenario (quiet
// host turning hostile at t=350ms) the calibrated operating point goes
// stale mid-transfer. The drift-aware adaptive link must detect the
// failure run, re-probe the live link and recover >= 70% of its
// pre-shift goodput (steady-state after recalibration, or the post-
// shift phase rate when the stale tuning happened to survive), while
// the same link with recalibration disabled collapses — aborted
// sessions or a small fraction of its pre-shift rate.
//
// Emits BENCH_scenarios.json (cwd) so CI archives a perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "bench/bench_common.h"
#include "proto/adaptive.h"
#include "scenario/registry.h"
#include "util/rng.h"

namespace {

using namespace mes;

constexpr std::uint64_t kSeed = 0x5CE7A210;
constexpr std::size_t kMatrixBits = 1024;
constexpr std::size_t kDriftBits = 4096;
constexpr std::size_t kDriftRepeats = 4;

const std::vector<Mechanism> kMechanisms = {
    Mechanism::flock,    Mechanism::file_lock_ex, Mechanism::mutex,
    Mechanism::semaphore, Mechanism::event,        Mechanism::waitable_timer,
};

// --- Part 1: mechanism x scenario survivability matrix ----------------

struct MatrixOut {
  std::vector<analysis::ScenarioMatrixCell> cells;
};

MatrixOut run_matrix()
{
  MatrixOut out;
  out.cells = analysis::scenario_matrix(kMechanisms,
                                        scenario::scenario_names(),
                                        ProtocolMode::adaptive, kMatrixBits,
                                        kSeed);

  TextTable table({"scenario", "mechanism", "delivered", "goodput(kb/s)",
                   "residual BER(%)", "recals", "state"});
  for (const analysis::ScenarioMatrixCell& c : out.cells) {
    table.add_row(
        {c.scenario, to_string(c.mechanism), c.delivered ? "yes" : "no",
         c.ran ? TextTable::num(c.goodput_bps / 1000.0, 3) : "-",
         c.ran ? TextTable::num(c.ber * 100.0, 2) : "-",
         std::to_string(c.recalibrations),
         c.ran ? (c.delivered ? "ok" : "UNDELIVERED") : c.failure});
  }
  table.print();

  std::size_t survivors = 0;
  for (const auto& c : out.cells) {
    if (c.delivered) ++survivors;
  }
  std::printf("matrix   : %zu/%zu (mechanism, scenario) cells deliver "
              "through the adaptive stack\n",
              survivors, out.cells.size());
  return out;
}

// --- Part 2: the drift experiment -------------------------------------

struct DriftCell {
  bool delivered = false;
  double pre_bps = 0.0;        // phase-0 (pre-shift) goodput
  double recovered_bps = 0.0;  // steady-state after the last recal
  double post_bps = 0.0;       // whole post-shift phase
  std::size_t recals = 0;
  double recovery() const
  {
    if (pre_bps <= 0.0) return 0.0;
    // When the stale tuning rode the shift out without recalibrating,
    // the post-shift phase rate IS the recovered rate.
    const double rate = recals > 0 ? recovered_bps : post_bps;
    return rate / pre_bps;
  }
};

DriftCell run_drift_cell(std::uint64_t seed, bool drift_enabled)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario_name = "regime-shift";
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.timing.symbol_bits = 2;  // multi-level classifier: no per-round
  cfg.sync_bits = 16;          // binary preamble self-healing to hide drift
  cfg.seed = seed;

  Rng rng{seed ^ 0xD21FULL};
  const BitVec payload = BitVec::random(rng, kDriftBits);

  proto::AdaptiveOptions opt;
  opt.drift.enabled = drift_enabled;
  const ChannelReport rep = proto::run_adaptive_transmission(cfg, payload, opt);

  DriftCell cell;
  cell.delivered = rep.ok && rep.sync_ok;
  if (rep.proto) {
    cell.recals = rep.proto->recalibrations;
    cell.recovered_bps = rep.proto->recovered_goodput_bps;
    for (const auto& ph : rep.proto->phases) {
      if (ph.phase == 0) cell.pre_bps = ph.goodput_bps;
      if (ph.phase == 1) cell.post_bps = ph.goodput_bps;
    }
  }
  return cell;
}

struct DriftOut {
  bool pass = false;
  double mean_recovery_on = 0.0;
  double mean_post_ratio_off = 0.0;
  std::size_t delivered_on = 0;
  std::size_t delivered_off = 0;
};

DriftOut run_drift()
{
  std::printf("\n-- regime-shift: drift-aware vs frozen calibration "
              "(Event, 2-bit symbols, %zu bits) --\n",
              static_cast<std::size_t>(kDriftBits));
  TextTable table({"seed", "mode", "delivered", "pre(kb/s)", "post(kb/s)",
                   "recovered(kb/s)", "recals", "recovery"});

  DriftOut out;
  double sum_on = 0.0;
  double sum_off = 0.0;
  for (std::size_t r = 0; r < kDriftRepeats; ++r) {
    const std::uint64_t seed = kSeed + 0x1000 * (r + 1);
    const DriftCell on = run_drift_cell(seed, true);
    const DriftCell off = run_drift_cell(seed, false);
    sum_on += on.recovery();
    // The frozen link never recalibrates, so recovery() degrades to how
    // much of the pre-shift rate survived the shift.
    sum_off += off.recovery();
    if (on.delivered) ++out.delivered_on;
    if (off.delivered) ++out.delivered_off;
    for (const auto& [mode, c] :
         {std::pair<const char*, const DriftCell&>{"drift", on},
          std::pair<const char*, const DriftCell&>{"frozen", off}}) {
      table.add_row({std::to_string(seed), mode, c.delivered ? "yes" : "NO",
                     TextTable::num(c.pre_bps / 1000.0, 3),
                     TextTable::num(c.post_bps / 1000.0, 3),
                     c.recals > 0 ? TextTable::num(c.recovered_bps / 1000.0, 3)
                                  : "-",
                     std::to_string(c.recals),
                     TextTable::num(100.0 * c.recovery(), 0) + "%"});
    }
  }
  table.print();

  out.mean_recovery_on = sum_on / kDriftRepeats;
  out.mean_post_ratio_off = sum_off / kDriftRepeats;

  // The two halves of the claim: the drift-aware link delivers every
  // session and recovers >= 70% of its pre-shift goodput; the frozen
  // link collapses — sessions abort and the surviving rate is a
  // fraction of the drift-aware one.
  const bool recovery_ok =
      out.delivered_on == kDriftRepeats && out.mean_recovery_on >= 0.70;
  const bool collapse_ok =
      out.delivered_off < kDriftRepeats ||
      out.mean_post_ratio_off <= 0.5 * out.mean_recovery_on;
  out.pass = recovery_ok && collapse_ok;

  std::printf("drift    : mean recovery %.0f%% (delivered %zu/%zu); frozen "
              "link keeps %.0f%% (delivered %zu/%zu)\n",
              100.0 * out.mean_recovery_on, out.delivered_on, kDriftRepeats,
              100.0 * out.mean_post_ratio_off, out.delivered_off,
              kDriftRepeats);
  std::printf("verdict  : %s (recovery %s 70%% bar; frozen link %s)\n",
              out.pass ? "PASS" : "FAIL",
              recovery_ok ? "clears" : "MISSES",
              collapse_ok ? "collapses" : "DID NOT COLLAPSE");
  return out;
}

// --- emission ----------------------------------------------------------

// Strict-JSON double: non-finite metrics emit null, never `nan`/`inf`
// (the artifact convention exec/campaign.cpp established — this file
// feeds the same CI perf-trajectory parsers).
void json_num(std::ostream& out, double v)
{
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

std::string to_json(const MatrixOut& matrix, const DriftOut& drift)
{
  std::ostringstream out;
  out << "{\"matrix\":[";
  for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
    const analysis::ScenarioMatrixCell& c = matrix.cells[i];
    if (i > 0) out << ",";
    out << "{\"scenario\":\"" << c.scenario << "\",\"mechanism\":\""
        << to_string(c.mechanism) << "\",\"ran\":"
        << (c.ran ? "true" : "false")
        << ",\"delivered\":" << (c.delivered ? "true" : "false")
        << ",\"goodput_bps\":";
    json_num(out, c.ran ? c.goodput_bps : 0.0);
    out << ",\"ber\":";
    json_num(out, c.ran ? c.ber : 0.0);
    out << ",\"recalibrations\":" << c.recalibrations << "}";
  }
  out << "],\"drift\":{\"mean_recovery\":";
  json_num(out, drift.mean_recovery_on);
  out << ",\"frozen_post_ratio\":";
  json_num(out, drift.mean_post_ratio_off);
  out << ",\"delivered_drift\":" << drift.delivered_on
      << ",\"delivered_frozen\":" << drift.delivered_off
      << ",\"repeats\":" << kDriftRepeats
      << ",\"pass\":" << (drift.pass ? "true" : "false") << "}}\n";
  return out.str();
}

void BM_ScenarioResolve(benchmark::State& state)
{
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scenario::scenario_or_throw("migrating-vm").name.size());
  }
}
BENCHMARK(BM_ScenarioResolve);

void BM_NonStationaryTransmission(benchmark::State& state)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario_name = "noisy-local";
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = kSeed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mes::bench::run_random(cfg, 512).ok);
  }
}
BENCHMARK(BM_NonStationaryTransmission)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  mes::bench::print_header(
      "Scenario library + drift-aware recalibration",
      "Tables IV-VI generalized to a composable, non-stationary library");

  const MatrixOut matrix = run_matrix();
  const DriftOut drift = run_drift();

  const std::string json = to_json(matrix, drift);
  std::ofstream out{"BENCH_scenarios.json"};
  if (out) {
    out << json;
    std::printf("\nwrote BENCH_scenarios.json\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return drift.pass ? 0 : 1;
}
