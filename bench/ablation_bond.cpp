// Ablation: the bonded multi-pair link (MIMO striping) vs one adaptive
// pair — §V.C.1's scaling argument turned into a working transport.
//
// analysis::run_multi_pair showed N independent raw rounds aggregate
// ~linearly; this bench shows the *bonded* layer (proto/bond) turning
// that aggregate into delivery of ONE payload: 8 event-channel
// sub-channels, each calibrated against the live noise, striping ARQ
// frames in lockstep waves. The acceptance bar is aggregate goodput
// >= 6x the single-pair adaptive baseline with a bit-exact payload —
// and bit-exact delivery (at reduced goodput) when one sub-channel is
// noise-killed mid-transfer and the bond drains it onto the survivors.
//
// Emits BENCH_bond.json (cwd) so CI archives a perf trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "bench/bench_common.h"
#include "proto/adaptive.h"
#include "proto/bond.h"
#include "util/rng.h"

namespace {

using namespace mes;

constexpr std::size_t kPayloadBits = 8192;
constexpr std::uint64_t kSeed = 0xB0DD5EED;

ExperimentConfig base_config()
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = kSeed;
  return cfg;
}

BitVec bench_payload()
{
  Rng rng{kSeed ^ 0xC11u};
  return BitVec::random(rng, kPayloadBits);
}

void print_bond_table(const proto::BondReport& bond)
{
  TextTable table({"sub-channel", "mechanism", "margin", "weight(kb/s)",
                   "burst", "delivered", "sends", "state"});
  for (std::size_t i = 0; i < bond.channels.size(); ++i) {
    const proto::BondChannelReport& ch = bond.channels[i];
    table.add_row(
        {std::to_string(i), to_string(ch.mechanism),
         ch.calibrated ? TextTable::num(ch.margin, 1) : "-",
         ch.calibrated ? TextTable::num(ch.weight_bps / 1000.0, 3) : "-",
         std::to_string(ch.burst), std::to_string(ch.stripes_delivered),
         std::to_string(ch.stripe_sends),
         ch.degraded ? "DEGRADED" : (ch.calibrated ? "ok" : ch.error)});
  }
  table.print();
  std::printf("  %zu/%zu pairs live, %zu stripes in %zu waves "
              "(%zu retransmits, %zu rebalanced), aggregate %.3f kb/s\n",
              bond.pairs_live, bond.pairs_requested, bond.stripes,
              bond.waves, bond.retransmits, bond.rebalances,
              bond.aggregate_goodput_bps / 1000.0);
}

bool run_tables(std::string& json_out)
{
  const ExperimentConfig cfg = base_config();
  const BitVec payload = bench_payload();

  // 1. The baseline the bond must beat 6x: one adaptive pair.
  std::printf("\n-- baseline: single adaptive Event pair --\n");
  const ChannelReport baseline =
      proto::run_adaptive_transmission(cfg, payload);
  const bool baseline_ok = baseline.ok && baseline.sync_ok &&
                           baseline.received_payload == payload;
  std::printf("  delivered %s, goodput %.3f kb/s\n",
              baseline_ok ? "bit-exact" : "FAILED",
              baseline.throughput_bps / 1000.0);

  // 2. N=8 bonded event stripes, clean channel.
  std::printf("\n-- bonded: 8x Event stripes, one simulation --\n");
  proto::BondReport bond;
  const ChannelReport bonded =
      proto::run_bonded_transmission(cfg, payload, 8, {}, &bond);
  print_bond_table(bond);
  const bool bond_exact = bonded.ok && bonded.sync_ok &&
                          bonded.received_payload == payload;
  const double speedup =
      baseline.throughput_bps > 0.0
          ? bond.aggregate_goodput_bps / baseline.throughput_bps
          : 0.0;
  std::printf("  speedup  : x%.2f over the single adaptive pair\n", speedup);

  // 3. The same bond with sub-channel 0 noise-killed mid-transfer: the
  // degraded-mode drain must still deliver bit-exactly on 7 survivors.
  std::printf("\n-- degraded: sub-channel 0 noise-killed from wave 1 --\n");
  proto::BondOptions faulted;
  faulted.fault = [](std::size_t channel, std::size_t wave) {
    return channel == 0 && wave >= 1;
  };
  proto::BondReport degraded;
  const ChannelReport degraded_rep =
      proto::run_bonded_transmission(cfg, payload, 8, faulted, &degraded);
  print_bond_table(degraded);
  const bool degraded_exact = degraded_rep.ok && degraded_rep.sync_ok &&
                              degraded_rep.received_payload == payload;
  const bool degraded_drained = degraded.rebalances > 0;

  // 4. Mixed mechanisms in one simulation: 4x event + 2x flock.
  std::printf("\n-- mixed bond: 4x Event + 2x flock --\n");
  std::vector<proto::BondChannelSpec> mixed_specs;
  for (int i = 0; i < 4; ++i) mixed_specs.push_back({Mechanism::event, {}});
  for (int i = 0; i < 2; ++i) mixed_specs.push_back({Mechanism::flock, {}});
  const proto::BondReport mixed =
      proto::bond_deliver(cfg, payload, mixed_specs);
  print_bond_table(mixed);
  const bool mixed_exact = mixed.delivered && mixed.received == payload;

  const bool pass_speedup = bond_exact && speedup >= 6.0;
  const bool pass_degraded = degraded_exact && degraded_drained;
  std::printf("\nverdict  : speedup %s (x%.2f, bar x6.00), degraded %s "
              "(%zu stripes rebalanced), mixed %s\n",
              pass_speedup ? "PASS" : "FAIL", speedup,
              pass_degraded ? "PASS" : "FAIL", degraded.rebalances,
              mixed_exact ? "PASS" : "FAIL");

  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"ablation_bond\",\n"
      "  \"payload_bits\": %zu,\n"
      "  \"baseline_adaptive_bps\": %.1f,\n"
      "  \"bond8_aggregate_bps\": %.1f,\n"
      "  \"bond8_speedup\": %.3f,\n"
      "  \"bond8_waves\": %zu,\n"
      "  \"bond8_retransmits\": %zu,\n"
      "  \"degraded_aggregate_bps\": %.1f,\n"
      "  \"degraded_rebalances\": %zu,\n"
      "  \"degraded_bit_exact\": %s,\n"
      "  \"mixed_aggregate_bps\": %.1f,\n"
      "  \"pass\": %s\n"
      "}\n",
      kPayloadBits, baseline.throughput_bps, bond.aggregate_goodput_bps,
      speedup, bond.waves, bond.retransmits,
      degraded.aggregate_goodput_bps, degraded.rebalances,
      degraded_exact ? "true" : "false", mixed.aggregate_goodput_bps,
      pass_speedup && pass_degraded && mixed_exact ? "true" : "false");
  json_out = buf;
  return pass_speedup && pass_degraded && mixed_exact;
}

void BM_BondDeliver(benchmark::State& state)
{
  ExperimentConfig cfg = base_config();
  Rng rng{0xB0DDB41ULL};
  const BitVec payload = BitVec::random(rng, 2048);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = kSeed + ++seed;
    benchmark::DoNotOptimize(
        proto::bond_deliver(cfg, payload,
                            static_cast<std::size_t>(state.range(0)))
            .aggregate_goodput_bps);
  }
}
BENCHMARK(BM_BondDeliver)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  mes::bench::print_header(
      "Bonded multi-pair link: MIMO striping vs one adaptive pair",
      "§V.C.1 scaling discussion of MES-Attacks, DAC'23");

  std::string json;
  const bool pass = run_tables(json);

  std::ofstream out{"BENCH_bond.json"};
  if (out) {
    out << json;
    std::printf("\nwrote BENCH_bond.json\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pass ? 0 : 1;
}
