// Reproduces Fig. 8: the proof-of-concept traces.
//
// (a) the 20-bit sequence the Trojan sends;
// (b) the Spy's per-bit detection times under the *synchronization*
//     (Event) channel with 2 s / 1 s waits — two clean levels;
// (c) the same under the *mutual exclusion* (flock) channel with a 3 s
//     hold for '1' and a 1 s sleep for '0'.
//
// The figure's point is simply that '1' and '0' are cleanly separable at
// second scale; the reproduction prints both latency series.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace mes;

const char* kSequence = "11010010001100101001";

ChannelReport run_poc(Mechanism m)
{
  ExperimentConfig cfg;
  cfg.mechanism = m;
  cfg.scenario = Scenario::local;
  cfg.sync_bits = 0;  // the PoC transmits the raw sequence
  cfg.recalibrate_from_preamble = false;
  cfg.seed = 0xF160808;
  if (class_of(m) == ChannelClass::cooperation) {
    cfg.timing.t0 = Duration::sec(1);        // wait 1 s for '0'
    cfg.timing.interval = Duration::sec(1);  // 2 s for '1'
  } else {
    cfg.timing.t1 = Duration::sec(3);  // hold 3 s for '1'
    cfg.timing.t0 = Duration::sec(1);  // sleep 1 s for '0'
  }
  return run_transmission(cfg, BitVec::from_string(kSequence));
}

void print_series(const char* title, const ChannelReport& rep)
{
  std::printf("%s\n", title);
  std::printf("  bit :");
  for (std::size_t i = 0; i < rep.tx_symbols.size(); ++i) {
    std::printf(" %4zu", rep.tx_symbols[i]);
  }
  std::printf("\n  t(s):");
  for (const Duration lat : rep.rx_latencies) {
    std::printf(" %4.1f", lat.to_sec());
  }
  std::printf("\n  rx  :");
  for (const std::size_t s : rep.rx_symbols) std::printf(" %4zu", s);
  std::printf("\n  decoded %s (BER %.2f%%)\n\n",
              rep.received_payload.to_string().c_str(),
              rep.ber_percent());
}

void print_figure()
{
  mes::bench::print_header("Proof of concept: second-scale transmission",
                           "Fig. 8 of MES-Attacks, DAC'23");
  std::printf("\n(a) Trojan bit sequence: %s\n\n", kSequence);

  const ChannelReport sync_rep = run_poc(Mechanism::event);
  print_series("(b) Spy detection times, synchronization (Event, 2s/1s):",
               sync_rep);

  const ChannelReport mutex_rep = run_poc(Mechanism::flock);
  print_series("(c) Spy detection times, mutual exclusion (flock, 3s/1s):",
               mutex_rep);

  std::printf("Expected: '1' and '0' levels cleanly separable in both\n"
              "traces; both decode the sequence exactly (BER 0%%).\n");
}

void BM_PocEvent(benchmark::State& state)
{
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_poc(Mechanism::event).ber);
  }
}
BENCHMARK(BM_PocEvent)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
