// Ablation: detection and mitigation (the §VIII defensive side).
//
// Detection: the kernel op trace of a running channel shows one object
// hammered by exactly two processes with bimodal inter-op intervals;
// mes::detect flags it. Mitigation: uniform timing fuzz injected into
// every MESM operation erodes the Spy's margin — this bench sweeps the
// fuzz amplitude and reports where each channel dies.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "detect/detector.h"
#include "os/win_objects.h"
#include "proto/adaptive.h"
#include "proto/calibrate.h"

namespace {

using namespace mes;

ChannelReport run_fuzzed(Mechanism m, double fuzz_us, std::uint64_t seed,
                         TraceOut* trace = nullptr)
{
  ExperimentConfig cfg;
  cfg.mechanism = m;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(m, Scenario::local);
  cfg.mitigation_fuzz = Duration::us(fuzz_us);
  cfg.enable_trace = trace != nullptr;
  cfg.seed = seed;
  return run_transmission(
      cfg, BitVec::random(*[] {
        static Rng rng{0xDEFE4D};
        return &rng;
      }(), 4096),
      trace);
}

void print_detection()
{
  std::printf("\n-- Detection: lock-pattern detector on kernel op traces --\n");
  TextTable table({"workload", "top finding", "flagged"});

  // A running Event channel: should be flagged.
  TraceOut channel_trace;
  run_fuzzed(Mechanism::event, 0.0, 0xD7EC7, &channel_trace);
  const detect::Detector detector;
  const auto findings = detector.analyze(channel_trace.ops);
  table.add_row({"Event covert channel",
                 findings.empty() ? "none" : detect::to_string(findings[0]),
                 detector.channel_detected(channel_trace.ops) ? "YES" : "no"});

  // Benign workload: two processes using a mutex at random think times.
  // Build it from the simulator directly.
  {
    const ScenarioProfile profile =
        make_profile(Scenario::local, OsFlavor::windows);
    sim::Simulator simulator{99};
    os::Kernel kernel{simulator, profile.noise};
    kernel.enable_trace(true);
    os::Process& a = kernel.create_process("worker_a", 0);
    os::Process& b = kernel.create_process("worker_b", 0);
    const os::Handle ha = kernel.objects().create_mutex(a, "app_lock", false);
    const os::Handle hb = kernel.objects().open_mutex(b, "app_lock");
    struct Worker {
      static sim::Proc run(os::Kernel& k, os::Process& p, os::Handle h,
                           int iterations)
      {
        for (int i = 0; i < iterations; ++i) {
          co_await k.objects().wait_for_single_object(p, h);
          co_await k.sleep(p, Duration::us(20 + p.rng().uniform(0, 400)));
          co_await k.objects().release_mutex(p, h);
          co_await k.sleep(p, Duration::us(50 + p.rng().uniform(0, 900)));
        }
      }
    };
    simulator.spawn(Worker::run(kernel, a, ha, 400));
    simulator.spawn(Worker::run(kernel, b, hb, 400));
    simulator.run();
    const auto benign = detector.analyze(kernel.trace());
    table.add_row({"benign mutex workload",
                   benign.empty() ? "none" : detect::to_string(benign[0]),
                   detector.channel_detected(kernel.trace()) ? "YES (false "
                                                               "positive)"
                                                             : "no"});
  }
  table.print();
}

void print_mitigation()
{
  std::printf("\n-- Mitigation: per-op timing fuzz vs channel BER --\n");
  // The channel's survival verdict comes from the same calibration the
  // adaptive attacker runs (proto/calibrate): the measured level margin
  // at the paper rate, not a hand-maintained BER cutoff. The last two
  // columns show that attacker's response — the calibrated rate backs
  // off as the fuzz eats the margin, trading rate for delivery.
  TextTable table({"fuzz (us)", "Event BER(%)", "flock BER(%)",
                   "Event margin", "adapt rate", "adapt TR(kb/s)",
                   "verdict"});
  Rng payload_rng{0xADA7};
  const BitVec payload = BitVec::random(payload_rng, 1024);
  for (const double fuzz : {0.0, 10.0, 20.0, 40.0, 80.0, 160.0}) {
    const ChannelReport ev = run_fuzzed(Mechanism::event, fuzz, 0xF022);
    const ChannelReport fl = run_fuzzed(Mechanism::flock, fuzz, 0xF023);

    ExperimentConfig cfg;
    cfg.mechanism = Mechanism::event;
    cfg.scenario = Scenario::local;
    cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
    cfg.mitigation_fuzz = Duration::us(fuzz);
    cfg.seed = 0xF024;
    proto::Calibration cal;
    const ChannelReport ad =
        proto::run_adaptive_transmission(cfg, payload, {}, &cal);

    // Margin of the *paper rate* under this fuzz (what the defender
    // erodes); the calibration may still find a slower survivable rate.
    proto::CalibrationOptions paper_only;
    paper_only.scales = {1.0};
    paper_only.refine_candidates = 0;
    const proto::Calibration at_paper = proto::calibrate_link(
        cfg, paper_only);

    const char* verdict = !ad.ok || !ad.sync_ok ? "neutralized"
                          : cal.scale > 1.0     ? "slowed down"
                                                : "alive";
    table.add_row(
        {TextTable::num(fuzz, 0),
         ev.ok ? TextTable::num(ev.ber_percent(), 2) : "-",
         fl.ok ? TextTable::num(fl.ber_percent(), 2) : "-",
         at_paper.ok ? TextTable::num(at_paper.margin, 1) : "gone",
         ad.ok && ad.sync_ok
             ? ("x" + TextTable::num(cal.scale, 2))
             : "-",
         ad.ok && ad.sync_ok ? TextTable::num(ad.throughput_kbps(), 3)
                             : "-",
         verdict});
  }
  table.print();
  std::printf(
      "\nExpected: fixed-rate BER climbs toward 50%% once the fuzz reaches\n"
      "the calibrated margin, while the adaptive sender retreats down the\n"
      "rate grid — the defender must spend enough fuzz to exhaust the\n"
      "whole grid, which is what makes the countermeasure costly.\n");
}

void BM_DetectorAnalyze(benchmark::State& state)
{
  TraceOut trace;
  run_fuzzed(Mechanism::event, 0.0, 0xD7EC8, &trace);
  const detect::Detector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze(trace.ops).size());
  }
}
BENCHMARK(BM_DetectorAnalyze)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  mes::bench::print_header("Detection & mitigation of MES-Attacks",
                           "§VIII (defensive discussion)");
  print_detection();
  print_mitigation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
