// Ablation: the storage-sync channel family (Sync+Sync, Write+Sync) on
// the page-cache/fsync model.
//
// Part 1 — survivability matrix: both storage mechanisms against the
// baseline boundaries and the storage workload layers (disk-pressure,
// journal-contention, writeback-storm), through the adaptive stack.
// The Table VI question asked of a channel whose physical layer is
// flush-device queueing rather than lock state: which boundaries does
// it cross? (Type-2 cross-VM must fail setup — each guest flushes to
// its own virtual disk, the paper's ✗.)
//
// Part 2 — ARQ delivery proof: bit-exact payload delivery over
// Sync+Sync under every storage workload layer. The gate: at least two
// storage scenarios deliver bit-exact, and disk-pressure is one of
// them.
//
// Part 3 — the decision primitive: mean spy fsync latency when the
// trojan is idle (bit 0) vs flushing (bit 1), per scenario. The
// separation between those two columns is what the classifier lives
// on; it must survive every workload layer.
//
// Emits BENCH_storage.json (cwd) so CI archives a perf trajectory
// against bench/storage_baseline.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "bench/bench_common.h"
#include "os/kernel.h"
#include "os/page_cache.h"
#include "os/vfs.h"
#include "proto/adaptive.h"
#include "scenario/registry.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace {

using namespace mes;

constexpr std::uint64_t kSeed = 0x570A26E1;
constexpr std::size_t kMatrixBits = 1024;
constexpr std::size_t kArqBits = 1024;

const std::vector<Mechanism> kStorageMechanisms = {
    Mechanism::sync_contention,
    Mechanism::write_sync,
};

// The storage workload layers (the new registry entries) plus the
// boundary baselines the family must be mapped against.
const std::vector<std::string> kStorageScenarios = {
    "disk-pressure", "journal-contention", "writeback-storm"};
const std::vector<std::string> kMatrixScenarios = {
    "local",           "disk-pressure", "journal-contention",
    "writeback-storm", "cross-sandbox", "cross-vm"};

// --- Part 1: storage mechanism x scenario survivability ----------------

struct MatrixOut {
  std::vector<analysis::ScenarioMatrixCell> cells;
};

MatrixOut run_matrix()
{
  MatrixOut out;
  out.cells = analysis::scenario_matrix(kStorageMechanisms, kMatrixScenarios,
                                        ProtocolMode::adaptive, kMatrixBits,
                                        kSeed);

  TextTable table({"scenario", "mechanism", "delivered", "goodput(kb/s)",
                   "residual BER(%)", "state"});
  for (const analysis::ScenarioMatrixCell& c : out.cells) {
    table.add_row(
        {c.scenario, to_string(c.mechanism), c.delivered ? "yes" : "no",
         c.ran ? TextTable::num(c.goodput_bps / 1000.0, 3) : "-",
         c.ran ? TextTable::num(c.ber * 100.0, 2) : "-",
         c.ran ? (c.delivered ? "ok" : "UNDELIVERED") : c.failure});
  }
  table.print();

  std::size_t survivors = 0;
  for (const auto& c : out.cells) {
    if (c.delivered) ++survivors;
  }
  std::printf("matrix   : %zu/%zu (storage mechanism, scenario) cells deliver "
              "through the adaptive stack\n",
              survivors, out.cells.size());
  return out;
}

// --- Part 2: ARQ bit-exact delivery over the workload layers -----------

struct ArqCell {
  std::string scenario;
  Mechanism mechanism = Mechanism::sync_contention;
  bool bit_exact = false;
  double goodput_bps = 0.0;
  std::size_t frame_sends = 0;
  std::size_t retransmits = 0;
  std::string failure;
};

ArqCell run_arq_cell(Mechanism m, const std::string& scenario,
                     std::uint64_t seed)
{
  ExperimentConfig cfg;
  cfg.mechanism = m;
  cfg.scenario_name = scenario;
  cfg.timing = paper_timeset(m, Scenario::local);
  cfg.seed = seed;

  Rng rng{seed ^ 0xA12FULL};
  const BitVec payload = BitVec::random(rng, kArqBits);
  const ChannelReport rep = proto::run_arq_transmission(cfg, payload);

  ArqCell cell;
  cell.scenario = scenario;
  cell.mechanism = m;
  cell.bit_exact = rep.ok && rep.sync_ok && rep.received_payload == payload;
  cell.goodput_bps = rep.throughput_bps;
  if (rep.proto) {
    cell.frame_sends = rep.proto->frame_sends;
    cell.retransmits = rep.proto->retransmits;
  }
  if (!rep.ok) cell.failure = rep.failure_reason;
  return cell;
}

struct ArqOut {
  std::vector<ArqCell> cells;
  bool pass = false;
};

ArqOut run_arq()
{
  std::printf("\n-- ARQ bit-exact delivery over the storage workload layers "
              "(%zu payload bits) --\n",
              static_cast<std::size_t>(kArqBits));
  TextTable table({"scenario", "mechanism", "bit-exact", "goodput(kb/s)",
                   "frame sends", "retransmits"});

  ArqOut out;
  std::size_t exact_sync_sync = 0;
  bool disk_pressure_exact = false;
  for (const std::string& scenario : kStorageScenarios) {
    for (const Mechanism m : kStorageMechanisms) {
      const ArqCell cell = run_arq_cell(m, scenario, kSeed + 0x77);
      table.add_row({cell.scenario, to_string(cell.mechanism),
                     cell.bit_exact ? "yes" : "NO",
                     TextTable::num(cell.goodput_bps / 1000.0, 3),
                     std::to_string(cell.frame_sends),
                     std::to_string(cell.retransmits)});
      if (m == Mechanism::sync_contention && cell.bit_exact) {
        ++exact_sync_sync;
        if (scenario == "disk-pressure") disk_pressure_exact = true;
      }
      out.cells.push_back(cell);
    }
  }
  table.print();

  // The gate: Sync+Sync must deliver bit-exact in >= 2 storage
  // scenarios, one of which is the disk-pressure layer.
  out.pass = exact_sync_sync >= 2 && disk_pressure_exact;
  std::printf("arq      : Sync+Sync bit-exact in %zu/%zu storage scenarios "
              "(disk-pressure %s)\n",
              exact_sync_sync, kStorageScenarios.size(),
              disk_pressure_exact ? "exact" : "NOT EXACT");
  std::printf("verdict  : %s (gate: >= 2 bit-exact incl. disk-pressure)\n",
              out.pass ? "PASS" : "FAIL");
  return out;
}

// --- Part 3: the fsync-latency decision primitive ----------------------

struct SeparationRow {
  std::string scenario;
  double mean0_us = 0.0;  // spy probe latency while the trojan idles
  double mean1_us = 0.0;  // ... while the trojan flushes
  double ratio = 0.0;
};

SeparationRow run_separation(const std::string& scenario, std::uint64_t seed)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::sync_contention;
  cfg.scenario_name = scenario;
  cfg.timing = paper_timeset(Mechanism::sync_contention, Scenario::local);
  cfg.seed = seed;
  const ChannelReport rep = mes::bench::run_random(cfg, 512);

  SeparationRow row;
  row.scenario = scenario;
  double sum0 = 0.0;
  double sum1 = 0.0;
  std::size_t n0 = 0;
  std::size_t n1 = 0;
  const std::size_t n = std::min(rep.tx_symbols.size(), rep.rx_latencies.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (rep.tx_symbols[i] == 0) {
      sum0 += rep.rx_latencies[i].to_us();
      ++n0;
    } else {
      sum1 += rep.rx_latencies[i].to_us();
      ++n1;
    }
  }
  if (n0 > 0) row.mean0_us = sum0 / static_cast<double>(n0);
  if (n1 > 0) row.mean1_us = sum1 / static_cast<double>(n1);
  if (row.mean0_us > 0.0) row.ratio = row.mean1_us / row.mean0_us;
  return row;
}

std::vector<SeparationRow> run_separations()
{
  std::printf("\n-- spy fsync latency: trojan idle (0) vs flushing (1) --\n");
  TextTable table({"scenario", "mean lat | 0 (us)", "mean lat | 1 (us)",
                   "separation"});
  std::vector<SeparationRow> rows;
  for (const std::string& scenario : kMatrixScenarios) {
    if (scenario == "cross-vm") continue;  // separate device timelines
    const SeparationRow row = run_separation(scenario, kSeed + 0x3000);
    table.add_row({row.scenario, TextTable::num(row.mean0_us, 1),
                   TextTable::num(row.mean1_us, 1),
                   TextTable::num(row.ratio, 1) + "x"});
    rows.push_back(row);
  }
  table.print();
  return rows;
}

// --- emission ----------------------------------------------------------

// Strict-JSON double: non-finite metrics emit null, never `nan`/`inf`
// (the BENCH_*.json artifact convention).
void json_num(std::ostream& out, double v)
{
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

std::string to_json(const MatrixOut& matrix, const ArqOut& arq,
                    const std::vector<SeparationRow>& separations)
{
  std::ostringstream out;
  out << "{\"matrix\":[";
  for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
    const analysis::ScenarioMatrixCell& c = matrix.cells[i];
    if (i > 0) out << ",";
    out << "{\"scenario\":\"" << c.scenario << "\",\"mechanism\":\""
        << to_string(c.mechanism) << "\",\"ran\":"
        << (c.ran ? "true" : "false")
        << ",\"delivered\":" << (c.delivered ? "true" : "false")
        << ",\"goodput_bps\":";
    json_num(out, c.ran ? c.goodput_bps : 0.0);
    out << ",\"ber\":";
    json_num(out, c.ran ? c.ber : 0.0);
    out << "}";
  }
  out << "],\"arq\":[";
  for (std::size_t i = 0; i < arq.cells.size(); ++i) {
    const ArqCell& c = arq.cells[i];
    if (i > 0) out << ",";
    out << "{\"scenario\":\"" << c.scenario << "\",\"mechanism\":\""
        << to_string(c.mechanism)
        << "\",\"bit_exact\":" << (c.bit_exact ? "true" : "false")
        << ",\"goodput_bps\":";
    json_num(out, c.goodput_bps);
    out << ",\"frame_sends\":" << c.frame_sends
        << ",\"retransmits\":" << c.retransmits << "}";
  }
  out << "],\"separation\":[";
  for (std::size_t i = 0; i < separations.size(); ++i) {
    const SeparationRow& r = separations[i];
    if (i > 0) out << ",";
    out << "{\"scenario\":\"" << r.scenario << "\",\"mean0_us\":";
    json_num(out, r.mean0_us);
    out << ",\"mean1_us\":";
    json_num(out, r.mean1_us);
    out << ",\"ratio\":";
    json_num(out, r.ratio);
    out << "}";
  }
  out << "],\"pass\":" << (arq.pass ? "true" : "false") << "}\n";
  return out.str();
}

// --- microbenchmarks ---------------------------------------------------

void BM_PageCacheMarkDirty(benchmark::State& state)
{
  sim::Simulator sim{kSeed};
  sim::NoiseParams quiet;
  os::Kernel kernel{sim, quiet};
  os::PageCache& cache = kernel.vfs().page_cache();
  std::uint64_t off = 0;
  for (auto _ : state) {
    cache.mark_dirty(1, off, os::PageCache::kPageSize);
    off = (off + os::PageCache::kPageSize) % (64 * os::PageCache::kPageSize);
    benchmark::DoNotOptimize(cache.total_dirty_pages());
  }
}
BENCHMARK(BM_PageCacheMarkDirty);

void BM_StorageTransmission(benchmark::State& state)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::sync_contention;
  cfg.scenario_name = "disk-pressure";
  cfg.timing = paper_timeset(Mechanism::sync_contention, Scenario::local);
  cfg.seed = kSeed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mes::bench::run_random(cfg, 512).ok);
  }
}
BENCHMARK(BM_StorageTransmission)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  mes::bench::print_header(
      "Storage-sync channel family on the page-cache/fsync model",
      "Table I rows 9-10 (Write+Sync / Sync+Sync) over Table VI boundaries");

  const MatrixOut matrix = run_matrix();
  const ArqOut arq = run_arq();
  const std::vector<SeparationRow> separations = run_separations();

  const std::string json = to_json(matrix, arq, separations);
  std::ofstream out{"BENCH_storage.json"};
  if (out) {
    out << json;
    std::printf("\nwrote BENCH_storage.json\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return arq.pass ? 0 : 1;
}
