// Reproduces Fig. 11 and §VI: multi-bit symbol coding on the Event
// channel.
//
// 2-bit symbols map to SetEvent delays {15, 65, 115, 165} us (tw0 = 15,
// spacing = 50 us — the smallest gap Fig. 9(a) shows is safe). Expected:
// the latency trace shows four distinct levels; 2-bit coding beats 1-bit
// TR (~15.1 vs ~13.1 kb/s in the paper); 3-bit coding stops paying
// because the high symbols spend too long on the wire.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace mes;

ChannelReport run_width(std::size_t width_bits, std::size_t payload_bits,
                        std::uint64_t seed)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing.t0 = Duration::us(15);
  cfg.timing.interval = Duration::us(50);
  cfg.timing.symbol_bits = width_bits;
  cfg.sync_bits = width_bits * 8;
  cfg.seed = seed;
  return mes::bench::run_random(cfg, payload_bits);
}

void print_figure()
{
  mes::bench::print_header(
      "Multi-bit symbol coding on the Event channel",
      "Fig. 11 and §VI of MES-Attacks, DAC'23");

  // Fig. 11: a 200-symbol 2-bit transmission trace.
  const ChannelReport trace = run_width(2, 400 - 16, 0xF1611);
  std::printf("\nFig. 11: 2-bit symbol latency trace (%zu symbols; "
              "4 distinct levels expected)\n",
              trace.rx_latencies.size());
  std::printf("  first 32 symbols [sent->decoded @ latency us]:\n  ");
  for (std::size_t i = 0; i < 32 && i < trace.rx_latencies.size(); ++i) {
    std::printf("%zu->%zu@%.0f ", trace.tx_symbols[i], trace.rx_symbols[i],
                trace.rx_latencies[i].to_us());
    if (i % 8 == 7) std::printf("\n  ");
  }
  if (trace.confusion) {
    std::printf("\n  symbol confusion (rows sent, cols decoded):\n");
    for (std::size_t r = 0; r < 4; ++r) {
      std::printf("   ");
      for (std::size_t c = 0; c < 4; ++c) {
        std::printf(" %5zu", trace.confusion->at(r, c));
      }
      std::printf("\n");
    }
  }

  // §VI: TR versus symbol width.
  std::printf("\nTR vs symbol width (20k payload bits each):\n");
  TextTable table({"symbol width", "wait times (us)", "BER(%)", "TR(kb/s)",
                   "paper TR(kb/s)"});
  const char* levels[] = {"15,80", "15,65,115,165",
                          "15,65,...,365 (8 levels)"};
  const double paper_tr[] = {13.105, 15.095, 0.0};
  for (std::size_t width = 1; width <= 3; ++width) {
    ExperimentConfig cfg;
    cfg.mechanism = Mechanism::event;
    cfg.scenario = Scenario::local;
    cfg.timing.t0 = Duration::us(15);
    // 1-bit uses the Table IV interval; wider alphabets use 50us spacing.
    cfg.timing.interval = width == 1 ? Duration::us(65) : Duration::us(50);
    cfg.timing.symbol_bits = width;
    cfg.sync_bits = width * 8;
    cfg.seed = 0xF1611AA + width;
    const ChannelReport rep = mes::bench::run_random(cfg, 20000);
    table.add_row({std::to_string(width) + "-bit", levels[width - 1],
                   rep.ok ? TextTable::num(rep.ber_percent(), 3) : "-",
                   rep.ok ? TextTable::num(rep.throughput_kbps(), 3) : "-",
                   paper_tr[width - 1] > 0
                       ? TextTable::num(paper_tr[width - 1], 3)
                       : "no further gain"});
  }
  table.print();
  std::printf(
      "\nExpected: 2-bit symbols raise TR to ~15 kb/s over 1-bit's ~13;\n"
      "3-bit stops paying (§VI: long symbols dominate the wire time).\n");
}

void BM_MultibitWidth(benchmark::State& state)
{
  const auto width = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_width(width, 512, ++seed).ber);
  }
}
BENCHMARK(BM_MultibitWidth)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
