// Reproduces Fig. 10: flock-channel BER and TR vs tt1 (tt0 fixed at 60 us
// — the Linux sleep wake-up floor pins it, §V.C.1).
//
// Expected shape: TR decreases monotonically with tt1; BER is concave —
// it rises below tt1 ~ 160 (classification margins shrink against
// dispatch/jitter tails), sits under 1% through [160, 220], and rises
// again past ~220 as the post-wait displaced-work penalty (the paper's
// "system is blocked more often") truncates measurements.
#include <benchmark/benchmark.h>

#include "analysis/sweep.h"
#include "bench/bench_common.h"

namespace {

using namespace mes;

constexpr std::size_t kBitsPerPoint = 20000;

void print_figure()
{
  mes::bench::print_header("flock channel: BER and TR vs tt1 (tt0 = 60us)",
                           "Fig. 10 of MES-Attacks, DAC'23");

  std::vector<double> tt1_us;
  for (double t = 110; t <= 320; t += 15) tt1_us.push_back(t);

  const auto points = analysis::sweep(
      tt1_us, kBitsPerPoint, 0xF1610,
      [](double tt1) {
        ExperimentConfig cfg;
        cfg.mechanism = Mechanism::flock;
        cfg.scenario = Scenario::local;
        cfg.timing.t1 = Duration::us(tt1);
        cfg.timing.t0 = Duration::us(60);
        return cfg;
      });

  TextTable table({"tt1(us)", "BER(%)", "TR(kb/s)"});
  for (const auto& p : points) {
    table.add_row({TextTable::num(p.x, 0),
                   p.ok ? TextTable::num(p.ber * 100.0, 3) : "x",
                   p.ok ? TextTable::num(p.throughput_bps / 1000.0, 3) : "x"});
  }
  table.print();
  std::printf(
      "\nPaper checkpoints: BER < 1%% for tt1 in [160, 220]; rises below\n"
      "160 (Spy resolution) and above 220 (system blocking); recommended\n"
      "point tt1=160 with BER ~0.6%% and TR ~7.2 kb/s.\n");
}

void BM_FlockSweepPoint(benchmark::State& state)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing.t1 = Duration::us(static_cast<double>(state.range(0)));
  cfg.timing.t0 = Duration::us(60);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(mes::bench::run_random(cfg, 256).ber);
  }
}
BENCHMARK(BM_FlockSweepPoint)->Arg(110)->Arg(160)->Arg(320)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
