// mes_lint — determinism / coroutine-lifetime invariant checker (CLI).
//
//   mes_lint [--root DIR] [--allow RULE:PATH-PREFIX]... [PATH...]
//   mes_lint --list-rules
//
// PATHs are repo-relative files or directories (default: src bench
// tools). Directories are walked recursively; only C++ sources are
// scanned. Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// The tree invariants it enforces, the suppression syntax and the
// rationale for each rule are documented in TESTING.md ("Static
// analysis & sanitizers") and tools/lint/lint.h.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace fs = std::filesystem;

namespace {

int usage(std::ostream& os, int code)
{
  os << "usage: mes_lint [--root DIR] [--allow RULE:PATH-PREFIX]...\n"
        "                [--list-rules] [PATH...]\n"
        "PATHs default to: src bench tools (repo-relative).\n"
        "Suppress a finding in-line with:\n"
        "  // mes-lint: allow(rule-name) <justification>\n";
  return code;
}

void list_rules()
{
  using mes::lint::Rule;
  for (std::size_t i = 0; i < mes::lint::kRuleCount; ++i) {
    const auto r = static_cast<Rule>(i);
    std::cout << mes::lint::rule_name(r) << "\n    "
              << mes::lint::rule_summary(r) << "\n";
  }
}

// Repo-relative path with forward slashes (rule scoping is prefix-based).
std::string rel_path(const fs::path& root, const fs::path& p)
{
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv)
{
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  mes::lint::Options opts = mes::lint::default_options();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      list_rules();
      return 0;
    }
    if (arg == "--root") {
      if (++i >= argc) return usage(std::cerr, 2);
      root = argv[i];
      continue;
    }
    if (arg == "--allow") {
      if (++i >= argc) return usage(std::cerr, 2);
      const std::string spec = argv[i];
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "mes_lint: --allow wants RULE:PATH-PREFIX, got '" << spec
                  << "'\n";
        return 2;
      }
      const auto rule = mes::lint::rule_from_name(spec.substr(0, colon));
      if (!rule) {
        std::cerr << "mes_lint: unknown rule '" << spec.substr(0, colon)
                  << "' (see --list-rules)\n";
        return 2;
      }
      opts.allow_paths.push_back({*rule, spec.substr(colon + 1)});
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mes_lint: unknown flag '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
    targets.push_back(arg);
  }
  if (targets.empty()) targets = {"src", "bench", "tools"};

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    const fs::path p = root / t;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() &&
            mes::lint::is_cpp_source(entry.path().generic_string())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "mes_lint: no such file or directory: " << p << "\n";
      return 2;
    }
  }
  // Directory iteration order is unspecified; findings must not be.
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      std::cerr << "mes_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::string rel = rel_path(root, file);
    for (const auto& f : mes::lint::lint_source(rel, text, opts)) {
      std::cout << f.path << ":" << f.line << ": ["
                << mes::lint::rule_name(f.rule) << "] " << f.message << "\n";
      ++findings;
    }
  }

  if (findings) {
    std::cout << "mes_lint: " << findings << " finding(s) in " << files.size()
              << " file(s) scanned — fix, or suppress in-line with "
                 "`// mes-lint: allow(<rule>) <why>`\n";
    return 1;
  }
  std::cout << "mes_lint: clean (" << files.size() << " files scanned)\n";
  return 0;
}
