// mes_cli — command-line driver for MES channel experiments.
//
//   mes_cli run      --mechanism event --scenario local --bits 20000
//   mes_cli run      --mechanism flock --t1 180 --t0 60 --seed 9 --fec
//   mes_cli sweep    --mechanism flock --param t1 --from 110 --to 320 --step 15
//   mes_cli campaign --mechanisms paper --scenarios local,noisy-local --seeds 5
//   mes_cli text     --mechanism event --message "hello covert world"
//   mes_cli list
//   mes_cli list-scenarios
//
// Everything the bench harness measures, reachable without recompiling.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/capacity.h"
#include "analysis/sweep.h"
#include "codec/fec.h"
#include "core/runner.h"
#include "exec/campaign.h"
#include "proto/adaptive.h"
#include "proto/bond.h"
#include "scenario/registry.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mes;

const std::map<std::string, Mechanism>& mechanism_names()
{
  static const std::map<std::string, Mechanism> names = {
      {"flock", Mechanism::flock},
      {"filelockex", Mechanism::file_lock_ex},
      {"mutex", Mechanism::mutex},
      {"semaphore", Mechanism::semaphore},
      {"event", Mechanism::event},
      {"timer", Mechanism::waitable_timer},
      {"signal", Mechanism::posix_signal},
      {"flock-sh", Mechanism::flock_shared},
  };
  return names;
}

// Scenario flags resolve through the registry: any canonical name or
// alias from scenario/registry.h ("local", "vm", "noisy-local", ...).
const scenario::ScenarioDef* resolve_scenario(const std::string& name)
{
  return scenario::find_scenario(name);
}

struct Options {
  std::string command;
  Mechanism mechanism = Mechanism::event;
  std::string scenario = "local";  // registry key or alias
  HypervisorType hypervisor = HypervisorType::none;
  std::size_t bits = 4096;
  std::uint64_t seed = 1;
  std::size_t width = 1;
  bool fec = false;
  bool adapt = false;  // run: calibrate + ARQ; campaign: adaptive axis
  std::size_t bond = 1;   // run: stripe over N bonded sub-channels
  std::string protocols;  // campaign protocol axis (comma list)
  std::string pairs;      // campaign bonded-pairs axis (comma list)
  std::string message;
  // Overrides; negative = use the paper timeset.
  double t1 = -1.0, t0 = -1.0, interval = -1.0, fuzz = 0.0;
  // Sweep controls.
  std::string param = "t1";
  double from = 110.0, to = 320.0, step = 15.0;
  // Campaign controls.
  std::string mechanisms = "paper";  // paper|all|comma list
  std::string scenarios = "local";   // comma list of local|sandbox|vm
  std::size_t repeats = 1;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string csv;       // CSV output path ("-" = stdout)
  bool json = false;     // machine-readable output (run/campaign)
};

void usage()
{
  std::printf(
      "usage: mes_cli <run|sweep|campaign|text|list|list-scenarios> "
      "[options]\n"
      "  --mechanism M   flock|filelockex|mutex|semaphore|event|timer|"
      "signal|flock-sh\n"
      "  --scenario S    any scenario-library name (see list-scenarios);\n"
      "                  local|sandbox|vm still work as aliases\n"
      "  --hypervisor H  type1|type2 (hypervisor-sensitive scenarios)\n"
      "  --bits N        payload bits (run/sweep/campaign cells)\n"
      "  --seed N        RNG seed             --width W   symbol bits\n"
      "  --t1 US --t0 US --interval US        timing overrides\n"
      "  --fuzz US       mitigation timing fuzz\n"
      "  --fec           Hamming(7,4)+interleave the payload\n"
      "  --adapt         adaptive protocol: calibrate the rate against\n"
      "                  the live noise, then deliver via ARQ (run/"
      "campaign)\n"
      "  --bond N        bonded link: stripe the payload across N\n"
      "                  calibrated sub-channel pairs in one simulation\n"
      "                  (run; implies the adaptive stack per pair)\n"
      "  --message TEXT  payload for `text`\n"
      "  --param P --from A --to B --step D   sweep controls "
      "(t1|t0|interval)\n"
      "  --json          machine-readable output (run/campaign)\n"
      "campaign options:\n"
      "  --mechanisms L  paper|all|comma list (default paper: the six "
      "Table IV MESMs)\n"
      "  --scenarios L   comma list of scenario-library names "
      "(default local)\n"
      "  --protocols L   comma list of fixed|arq|adaptive (default fixed)\n"
      "  --pairs L       comma list of bonded pair counts, e.g. 1,4,8\n"
      "                  (cells with N > 1 stripe over a bonded link)\n"
      "  --seeds K       seed replicates per grid point (default 1)\n"
      "  --jobs J        worker threads (default: hardware concurrency)\n"
      "  --csv PATH      per-cell CSV emission ('-' = stdout)\n");
}

bool parse(int argc, char** argv, Options& opt)
{
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--mechanism") {
      const char* v = next();
      if (!v || !mechanism_names().contains(v)) return false;
      opt.mechanism = mechanism_names().at(v);
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return false;
      if (resolve_scenario(v) == nullptr) {
        std::fprintf(stderr, "unknown scenario %s (try list-scenarios)\n",
                     v);
        return false;
      }
      opt.scenario = v;
    } else if (arg == "--hypervisor") {
      const char* v = next();
      if (!v) return false;
      opt.hypervisor = std::strcmp(v, "type2") == 0 ? HypervisorType::type2
                                                    : HypervisorType::type1;
    } else if (arg == "--bits") {
      const char* v = next();
      if (!v) return false;
      opt.bits = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--width") {
      const char* v = next();
      if (!v) return false;
      opt.width = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--t1" || arg == "--t0" || arg == "--interval" ||
               arg == "--fuzz" || arg == "--from" || arg == "--to" ||
               arg == "--step") {
      const char* v = next();
      if (!v) return false;
      const double value = std::strtod(v, nullptr);
      if (arg == "--t1") opt.t1 = value;
      else if (arg == "--t0") opt.t0 = value;
      else if (arg == "--interval") opt.interval = value;
      else if (arg == "--fuzz") opt.fuzz = value;
      else if (arg == "--from") opt.from = value;
      else if (arg == "--to") opt.to = value;
      else opt.step = value;
    } else if (arg == "--fec") {
      opt.fec = true;
    } else if (arg == "--adapt") {
      opt.adapt = true;
    } else if (arg == "--bond") {
      const char* v = next();
      if (!v) return false;
      // strtoull wraps negatives to huge values; reject both outright
      // (4096 sub-channels is already far past the useful range).
      opt.bond = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      if (v[0] == '-' || opt.bond == 0 || opt.bond > 4096) {
        std::fprintf(stderr, "--bond wants 1..4096 pairs\n");
        return false;
      }
    } else if (arg == "--protocols") {
      const char* v = next();
      if (!v) return false;
      opt.protocols = v;
    } else if (arg == "--pairs") {
      const char* v = next();
      if (!v) return false;
      opt.pairs = v;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--seeds") {
      const char* v = next();
      if (!v) return false;
      opt.repeats = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return false;
      opt.jobs = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--mechanisms") {
      const char* v = next();
      if (!v) return false;
      opt.mechanisms = v;
    } else if (arg == "--scenarios") {
      const char* v = next();
      if (!v) return false;
      opt.scenarios = v;
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return false;
      opt.csv = v;
    } else if (arg == "--param") {
      const char* v = next();
      if (!v) return false;
      opt.param = v;
    } else if (arg == "--message") {
      const char* v = next();
      if (!v) return false;
      opt.message = v;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string timing_string(Mechanism m, const TimingConfig& t)
{
  char buf[64];
  if (class_of(m) == ChannelClass::contention) {
    std::snprintf(buf, sizeof buf, "t1=%.0f t0=%.0f", t.t1.to_us(),
                  t.t0.to_us());
  } else {
    std::snprintf(buf, sizeof buf, "tw0=%.0f ti=%.0f", t.t0.to_us(),
                  t.interval.to_us());
  }
  return buf;
}

ExperimentConfig config_from(const Options& opt)
{
  ExperimentConfig cfg;
  cfg.mechanism = opt.mechanism;
  const scenario::ScenarioDef& def = *resolve_scenario(opt.scenario);
  cfg.scenario = def.legacy;         // the Timeset anchor
  cfg.scenario_name = def.name;
  cfg.hypervisor = opt.hypervisor;
  cfg.timing = paper_timeset(opt.mechanism, cfg.scenario);
  if (opt.t1 >= 0) cfg.timing.t1 = Duration::us(opt.t1);
  if (opt.t0 >= 0) cfg.timing.t0 = Duration::us(opt.t0);
  if (opt.interval >= 0) cfg.timing.interval = Duration::us(opt.interval);
  cfg.timing.symbol_bits = opt.width;
  cfg.sync_bits = 8 * opt.width;
  cfg.mitigation_fuzz = Duration::us(opt.fuzz);
  cfg.seed = opt.seed;
  return cfg;
}

void print_report(const ChannelReport& rep, std::size_t payload_bits)
{
  if (!rep.ok) {
    std::printf("FAILED: %s\n", rep.failure_reason.c_str());
    return;
  }
  std::printf("mechanism : %s (%s), scenario %s\n", to_string(rep.mechanism),
              to_string(class_of(rep.mechanism)), to_string(rep.scenario));
  std::printf("payload   : %zu bits, preamble %s\n", payload_bits,
              rep.sync_ok ? "verified" : "FAILED");
  std::printf("BER       : %.4f%%\n", rep.ber_percent());
  std::printf("TR        : %.3f kb/s   (BSC capacity bound %.3f kb/s)\n",
              rep.throughput_kbps(),
              analysis::effective_capacity_bps(rep.throughput_bps, rep.ber) /
                  1000.0);
  std::printf("elapsed   : %s\n", to_string(rep.elapsed).c_str());
}

int cmd_run(const Options& opt)
{
  if (opt.width == 0) {
    std::fprintf(stderr, "--width must be at least 1\n");
    return 2;
  }
  ExperimentConfig cfg = config_from(opt);
  Rng rng{opt.seed ^ 0xC11u};
  const std::size_t n = opt.bits - opt.bits % opt.width;
  const BitVec secret = BitVec::random(rng, n);
  if (opt.bond > 1) {
    if (opt.fec) {
      std::fprintf(stderr, "--fec and --bond are mutually exclusive: the "
                           "bonded link already FEC-protects every "
                           "stripe\n");
      return 2;
    }
    proto::BondReport bond;
    const ChannelReport rep =
        proto::run_bonded_transmission(cfg, secret, opt.bond, {}, &bond);
    if (opt.json) {
      std::printf("%s\n", exec::report_json(rep, secret.size()).c_str());
      return rep.ok && rep.sync_ok ? 0 : 1;
    }
    print_report(rep, secret.size());
    TextTable table({"sub-channel", "mechanism", "calibrated", "margin",
                     "weight(kb/s)", "burst", "delivered", "sends",
                     "state"});
    for (std::size_t i = 0; i < bond.channels.size(); ++i) {
      const proto::BondChannelReport& ch = bond.channels[i];
      table.add_row(
          {std::to_string(i), to_string(ch.mechanism),
           ch.calibrated ? "yes" : "no",
           ch.calibrated ? TextTable::num(ch.margin, 1) : "-",
           ch.calibrated ? TextTable::num(ch.weight_bps / 1000.0, 3) : "-",
           std::to_string(ch.burst),
           std::to_string(ch.stripes_delivered),
           std::to_string(ch.stripe_sends),
           ch.degraded ? "DEGRADED" : (ch.calibrated ? "ok" : ch.error)});
    }
    table.print();
    std::printf("bond      : %zu/%zu pairs live, %zu stripes in %zu waves "
                "(%zu retransmits, %zu rebalanced), aggregate %.3f kb/s\n",
                bond.pairs_live, bond.pairs_requested, bond.stripes,
                bond.waves, bond.retransmits, bond.rebalances,
                bond.aggregate_goodput_bps / 1000.0);
    return rep.ok && rep.sync_ok ? 0 : 1;
  }
  if (opt.adapt) {
    if (opt.fec) {
      std::fprintf(stderr, "--fec and --adapt are mutually exclusive: the "
                           "adaptive protocol already FEC-protects every "
                           "ARQ frame\n");
      return 2;
    }
    proto::Calibration cal;
    const ChannelReport rep =
        proto::run_adaptive_transmission(cfg, secret, {}, &cal);
    if (opt.json) {
      std::printf("%s\n", exec::report_json(rep, secret.size()).c_str());
      return rep.ok && rep.sync_ok ? 0 : 1;
    }
    print_report(rep, secret.size());
    if (cal.ok) {
      std::printf("calibrated: %s (x%.2f), margin %.1f, symbol err "
                  "%.2f%%, %zu probes in %s\n",
                  timing_string(cfg.mechanism, cal.timing).c_str(),
                  cal.scale, cal.margin, cal.symbol_error * 100.0,
                  cal.probes_sent, to_string(cal.elapsed).c_str());
    }
    if (rep.proto) {
      std::printf("ARQ       : %zu frames, %zu sends (%zu retransmits)\n",
                  rep.proto->frames, rep.proto->frame_sends,
                  rep.proto->retransmits);
    }
    return rep.ok && rep.sync_ok ? 0 : 1;
  }
  if (opt.json) {
    const BitVec payload = opt.fec ? codec::fec_protect(secret, 7) : secret;
    const ChannelReport rep = run_transmission(cfg, payload);
    std::string json = exec::report_json(rep, payload.size());
    if (opt.fec && rep.ok) {
      const auto recovered = codec::fec_recover(rep.received_payload, 7);
      const std::size_t residual = secret.hamming_distance(
          recovered.data.slice(0, secret.size()));
      char fec_buf[160];
      std::snprintf(fec_buf, sizeof fec_buf,
                    ",\"fec\":{\"corrected\":%zu,\"residual_errors\":%zu,"
                    "\"residual_ber\":%g,\"goodput_bps\":%g}}",
                    recovered.corrected, residual,
                    secret.empty() ? 0.0
                                   : static_cast<double>(residual) /
                                         static_cast<double>(secret.size()),
                    rep.throughput_bps * 4.0 / 7.0);
      json.replace(json.size() - 1, 1, fec_buf);
    }
    std::printf("%s\n", json.c_str());
    return rep.ok ? 0 : 1;
  }
  if (!opt.fec) {
    const ChannelReport rep = run_transmission(cfg, secret);
    print_report(rep, secret.size());
    return rep.ok ? 0 : 1;
  }
  const BitVec coded = codec::fec_protect(secret, 7);
  const ChannelReport rep = run_transmission(cfg, coded);
  print_report(rep, coded.size());
  if (!rep.ok) return 1;
  const auto recovered = codec::fec_recover(rep.received_payload, 7);
  const std::size_t residual =
      secret.hamming_distance(recovered.data.slice(0, secret.size()));
  std::printf("FEC       : corrected %zu codewords; residual errors %zu "
              "(%.4f%%); goodput %.3f kb/s\n",
              recovered.corrected, residual,
              100.0 * static_cast<double>(residual) /
                  static_cast<double>(secret.size()),
              rep.throughput_kbps() * 4.0 / 7.0);
  return 0;
}

int cmd_sweep(const Options& opt)
{
  std::vector<double> xs;
  for (double x = opt.from; x <= opt.to + 1e-9; x += opt.step) {
    xs.push_back(x);
  }
  const auto points = analysis::sweep(
      xs, opt.bits, opt.seed, [&](double x) {
        Options point = opt;
        if (opt.param == "t1") point.t1 = x;
        else if (opt.param == "t0") point.t0 = x;
        else point.interval = x;
        return config_from(point);
      });
  TextTable table({opt.param + "(us)", "BER(%)", "TR(kb/s)",
                   "capacity(kb/s)"});
  for (const auto& p : points) {
    table.add_row(
        {TextTable::num(p.x, 0),
         p.ok ? TextTable::num(p.ber * 100.0, 3) : "-",
         p.ok ? TextTable::num(p.throughput_bps / 1000.0, 3) : "-",
         p.ok ? TextTable::num(analysis::effective_capacity_bps(
                                   p.throughput_bps, p.ber) /
                                   1000.0,
                               3)
              : p.failure});
  }
  table.print();
  return 0;
}

std::vector<std::string> split_list(const std::string& csv_list)
{
  std::vector<std::string> items;
  std::stringstream stream{csv_list};
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

bool campaign_plan(const Options& opt, exec::ExperimentPlan& plan)
{
  if (opt.mechanisms == "paper") {
    plan.mechanisms = {Mechanism::flock, Mechanism::file_lock_ex,
                       Mechanism::mutex, Mechanism::semaphore,
                       Mechanism::event, Mechanism::waitable_timer};
  } else if (opt.mechanisms == "all") {
    plan.mechanisms.clear();
    for (const auto& [name, mechanism] : mechanism_names()) {
      (void)name;
      plan.mechanisms.push_back(mechanism);
    }
  } else {
    plan.mechanisms.clear();
    for (const std::string& name : split_list(opt.mechanisms)) {
      if (!mechanism_names().contains(name)) {
        std::fprintf(stderr, "unknown mechanism %s\n", name.c_str());
        return false;
      }
      plan.mechanisms.push_back(mechanism_names().at(name));
    }
  }

  plan.scenarios.clear();
  for (const std::string& name : split_list(opt.scenarios)) {
    const scenario::ScenarioDef* def = resolve_scenario(name);
    if (def == nullptr) {
      std::fprintf(stderr, "unknown scenario %s (try list-scenarios)\n",
                   name.c_str());
      return false;
    }
    // The hypervisor flag only matters for hypervisor-sensitive
    // scenarios; the legacy cross-VM default (type-1) is preserved so
    // historical invocations keep their exact labels and seeds.
    plan.scenarios.push_back(exec::named_scenario(
        def->name, def->hypervisor_sensitive
                       ? (opt.hypervisor == HypervisorType::none
                              ? HypervisorType::type1
                              : opt.hypervisor)
                       : HypervisorType::none));
  }
  if (plan.mechanisms.empty() || plan.scenarios.empty()) {
    std::fprintf(stderr, "campaign needs at least one mechanism and one "
                         "scenario\n");
    return false;
  }

  // Protocol axis: --protocols wins, --adapt alone means adaptive-only.
  if (!opt.protocols.empty()) {
    static const std::map<std::string, ProtocolMode> protocol_names = {
        {"fixed", ProtocolMode::fixed},
        {"arq", ProtocolMode::arq},
        {"adaptive", ProtocolMode::adaptive},
    };
    plan.protocols.clear();
    for (const std::string& name : split_list(opt.protocols)) {
      if (!protocol_names.contains(name)) {
        std::fprintf(stderr, "unknown protocol %s\n", name.c_str());
        return false;
      }
      plan.protocols.push_back({name, protocol_names.at(name)});
    }
    if (plan.protocols.empty()) {
      std::fprintf(stderr, "--protocols needs at least one value\n");
      return false;
    }
  } else if (opt.adapt) {
    plan.protocols = {{"adaptive", ProtocolMode::adaptive}};
  }

  // Bonded-pairs axis: cells with N > 1 stripe the payload over a
  // bonded link of N calibrated sub-channels (proto/bond).
  if (!opt.pairs.empty()) {
    plan.pairs.clear();
    for (const std::string& item : split_list(opt.pairs)) {
      const std::size_t n_pairs =
          static_cast<std::size_t>(std::strtoull(item.c_str(), nullptr, 10));
      // Negatives wrap through strtoull; reject them with the zeros.
      if (item[0] == '-' || n_pairs == 0 || n_pairs > 4096) {
        std::fprintf(stderr, "--pairs values must be 1..4096\n");
        return false;
      }
      plan.pairs.push_back(n_pairs);
    }
    if (plan.pairs.empty()) {
      std::fprintf(stderr, "--pairs needs at least one value\n");
      return false;
    }
  }

  plan.repeats = std::max<std::size_t>(opt.repeats, 1);
  plan.seed_base = opt.seed;
  plan.payload_bits = opt.bits;
  // Per-cell timing starts from the paper Timeset of (mechanism,
  // scenario); explicit flags override on top, like `run` does.
  plan.tweak = [opt](ExperimentConfig& cfg, const exec::CellCoord&) {
    if (opt.t1 >= 0) cfg.timing.t1 = Duration::us(opt.t1);
    if (opt.t0 >= 0) cfg.timing.t0 = Duration::us(opt.t0);
    if (opt.interval >= 0) cfg.timing.interval = Duration::us(opt.interval);
    cfg.timing.symbol_bits = opt.width;
    cfg.sync_bits = 8 * opt.width;
    cfg.mitigation_fuzz = Duration::us(opt.fuzz);
  };
  return true;
}

int cmd_campaign(const Options& opt)
{
  exec::ExperimentPlan plan;
  if (!campaign_plan(opt, plan)) return 2;

  const exec::CampaignRunner runner{opt.jobs};
  const exec::CampaignResult result = runner.run(plan);

  if (!opt.csv.empty()) {
    if (opt.csv == "-") {
      exec::write_csv(std::cout, result);
    } else {
      std::ofstream out{opt.csv};
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", opt.csv.c_str());
        return 1;
      }
      exec::write_csv(out, result);
    }
  }
  // A campaign where *nothing* could run (every cell failed setup or
  // validation) is a failure for scripts, like cmd_run's rep.ok.
  std::size_t cells_ok = 0;
  for (const exec::CellResult& c : result.cells) {
    if (c.report.ok) ++cells_ok;
  }
  const int exit_code = cells_ok > 0 ? 0 : 1;

  if (opt.json) {
    exec::write_json(std::cout, result);
    return exit_code;
  }

  std::printf("campaign: %zu cells (%zu mechanisms x %zu scenarios x %zu "
              "protocols x %zu pair counts x %zu seeds), %zu jobs\n",
              result.cells.size(), plan.mechanisms.size(),
              plan.scenarios.size(), plan.protocols.size(),
              plan.pairs.size(), plan.repeats, runner.jobs());
  TextTable table({"point", "cells", "sync", "mean BER(%)", "max BER(%)",
                   "mean TR(kb/s)", "capacity(kb/s)"});
  for (const exec::GroupStats& g : result.points) {
    table.add_row(
        {g.key, std::to_string(g.cells),
         std::to_string(g.sync_ok) + "/" + std::to_string(g.cells),
         g.ok ? TextTable::num(g.mean_ber * 100.0, 3) : "-",
         g.ok ? TextTable::num(g.max_ber * 100.0, 3) : "-",
         g.ok ? TextTable::num(g.mean_throughput_bps / 1000.0, 3) : "-",
         g.ok ? TextTable::num(analysis::effective_capacity_bps(
                                   g.mean_throughput_bps, g.mean_ber) /
                                   1000.0,
                               3)
              : "setup failed"});
  }
  table.print();

  if (plan.scenarios.size() > 1) {
    std::printf("\nmarginals by scenario:\n");
    TextTable marg({"scenario", "cells", "sync", "mean BER(%)",
                    "mean TR(kb/s)"});
    for (const exec::GroupStats& g : result.by_scenario) {
      marg.add_row(
          {g.key, std::to_string(g.cells),
           std::to_string(g.sync_ok) + "/" + std::to_string(g.cells),
           g.ok ? TextTable::num(g.mean_ber * 100.0, 3) : "-",
           g.ok ? TextTable::num(g.mean_throughput_bps / 1000.0, 3) : "-"});
    }
    marg.print();
  }
  return exit_code;
}

int cmd_text(const Options& opt)
{
  if (opt.message.empty()) {
    std::fprintf(stderr, "text requires --message\n");
    return 2;
  }
  ExperimentConfig cfg = config_from(opt);
  const BitVec payload = BitVec::from_text(opt.message);
  const RoundedReport rounded = run_with_retries(cfg, payload);
  print_report(rounded.report, payload.size());
  if (rounded.report.ok && rounded.report.sync_ok) {
    std::printf("rounds    : %zu\n", rounded.rounds_attempted);
    std::printf("received  : \"%s\"\n",
                rounded.report.ber == 0.0
                    ? rounded.report.received_payload.to_text().c_str()
                    : "<bit errors>");
  }
  return rounded.report.ok ? 0 : 1;
}

int cmd_list_scenarios()
{
  TextTable table({"scenario", "layers", "noise regime", "anchor",
                   "aliases"});
  for (const scenario::ScenarioDef& def : scenario::library()) {
    const ScenarioProfile profile =
        def.build(OsFlavor::windows, HypervisorType::none);
    std::string layers;
    for (const std::string& layer : profile.layers) {
      if (!layers.empty()) layers += " + ";
      layers += layer;
    }
    std::string aliases;
    for (const std::string& alias : def.aliases) {
      if (!aliases.empty()) aliases += ",";
      aliases += alias;
    }
    table.add_row({def.name, layers,
                   profile.make_noise(1)->describe(),
                   to_string(def.legacy), aliases});
  }
  table.print();
  std::printf("%zu scenarios (%zu non-stationary); campaign axis: "
              "--scenarios name,name,...\n",
              scenario::library().size(),
              static_cast<std::size_t>(
                  std::count_if(scenario::library().begin(),
                                scenario::library().end(),
                                [](const scenario::ScenarioDef& d) {
                                  return d.non_stationary;
                                })));
  return 0;
}

int cmd_list()
{
  TextTable table({"mechanism", "class", "OS", "local Timeset"});
  for (const auto& [name, mechanism] : mechanism_names()) {
    const TimingConfig t = paper_timeset(mechanism, Scenario::local);
    table.add_row({name, to_string(class_of(mechanism)),
                   flavor_of(mechanism) == OsFlavor::windows ? "windows"
                                                             : "linux",
                   timing_string(mechanism, t)});
  }
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv)
{
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (opt.command == "run") return cmd_run(opt);
  if (opt.command == "sweep") return cmd_sweep(opt);
  if (opt.command == "campaign") return cmd_campaign(opt);
  if (opt.command == "text") return cmd_text(opt);
  if (opt.command == "list") return cmd_list();
  if (opt.command == "list-scenarios") return cmd_list_scenarios();
  usage();
  return 2;
}
