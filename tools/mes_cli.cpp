// mes_cli — command-line driver for MES channel experiments.
//
//   mes_cli run      --mechanism event --scenario local --bits 20000
//   mes_cli run      --mechanism flock --t1 180 --t0 60 --seed 9 --fec
//   mes_cli run      --spec session.json --json
//   mes_cli sweep    --mechanism flock --param t1 --from 110 --to 320 --step 15
//   mes_cli campaign --mechanisms paper --scenarios local,noisy-local --seeds 5
//   mes_cli campaign --plan plans/smoke.json --json
//   mes_cli plan     --print            (default SessionSpec template)
//   mes_cli plan     --print-campaign   (default campaign plan template)
//   mes_cli text     --mechanism event --message "hello covert world"
//   mes_cli list
//   mes_cli list-scenarios
//
// Everything the bench harness measures, reachable without recompiling.
// All experiment construction goes through the public façade
// (mes::api): flags build a SessionSpec / PlanSpec, files parse into
// one, and transfers run through api::Session. Unknown flags, flags on
// the wrong subcommand and unknown subcommands are hard errors (exit 2
// with usage), never silently ignored.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/capacity.h"
#include "analysis/sweep.h"
#include "api/session.h"
#include "api/spec.h"
#include "codec/fec.h"
#include "core/runner.h"
#include "exec/campaign.h"
#include "exec/stream.h"
#include "scenario/registry.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mes;

// Scenario flags resolve through the registry: any canonical name or
// alias from scenario/registry.h ("local", "vm", "noisy-local", ...).
const scenario::ScenarioDef* resolve_scenario(const std::string& name)
{
  return scenario::find_scenario(name);
}

// The CLI's historical mechanism order (a std::map, i.e. alphabetical
// by key). `list` rows and the `--mechanisms all` axis both keep it so
// pre-façade invocations reproduce their exact output and per-cell
// seed schedule.
std::vector<std::pair<std::string, Mechanism>> mechanisms_alphabetical()
{
  std::vector<std::pair<std::string, Mechanism>> names =
      api::mechanism_names();
  std::sort(names.begin(), names.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return names;
}

struct Options {
  std::string command;
  Mechanism mechanism = Mechanism::event;
  std::string scenario = "local";  // registry key or alias
  HypervisorType hypervisor = HypervisorType::none;
  std::size_t bits = 4096;
  std::uint64_t seed = 1;
  std::size_t width = 1;
  bool fec = false;
  bool adapt = false;  // run: calibrate + ARQ; campaign: adaptive axis
  // Adaptive calibration policy: full sweeps every cell/transfer
  // independently (byte-identical to the pre-cache behavior); warm
  // reuses the leader's published pick across same-link cells.
  CalibrationPolicy calibration = CalibrationPolicy::full;
  std::size_t bond = 1;   // run: stripe over N bonded sub-channels
  std::string protocols;  // campaign protocol axis (comma list)
  std::string pairs;      // campaign bonded-pairs axis (comma list)
  std::string message;
  std::string spec_path;  // run: SessionSpec JSON file
  std::string plan_path;  // campaign: PlanSpec JSON file
  bool print_session = false;   // plan --print
  bool print_campaign = false;  // plan --print-campaign
  // Overrides; negative = use the paper timeset.
  double t1 = -1.0, t0 = -1.0, interval = -1.0, fuzz = 0.0;
  // Sweep controls.
  std::string param = "t1";
  double from = 110.0, to = 320.0, step = 15.0;
  // Campaign controls.
  std::string mechanisms = "paper";  // paper|all|comma list
  std::string scenarios = "local";   // comma list of scenario names
  std::size_t repeats = 1;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string csv;       // CSV output path ("-" = stdout)
  bool json = false;     // machine-readable output (run/campaign)
  std::string shard;       // "i/N": run only cells with flat % N == i
  std::string records;     // per-cell JSONL record output path
  std::string checkpoint;  // resumable record file (read + append)
  std::string merge;       // comma list of record files to merge

  // Which flags the command line actually carried (conflict checks).
  std::set<std::string> seen;
  bool has(const char* flag) const { return seen.contains(flag); }
};

void usage()
{
  std::printf(
      "usage: mes_cli <run|sweep|campaign|plan|text|list|list-scenarios> "
      "[options]\n"
      "  --mechanism M   flock|filelockex|mutex|semaphore|event|timer|"
      "signal|flock-sh|\n"
      "                  sync-sync|write-sync|dme-bcast|dme-ra|dme-maekawa\n"
      "                  (dme-* need a cluster scenario, e.g. dme-rack-5)\n"
      "  --scenario S    any scenario-library name (see list-scenarios);\n"
      "                  local|sandbox|vm still work as aliases\n"
      "  --hypervisor H  type1|type2 (hypervisor-sensitive scenarios)\n"
      "  --bits N        payload bits (run/sweep/campaign cells)\n"
      "  --seed N        RNG seed             --width W   symbol bits\n"
      "  --t1 US --t0 US --interval US        timing overrides\n"
      "  --fuzz US       mitigation timing fuzz\n"
      "  --fec           Hamming(7,4)+interleave the payload (run)\n"
      "  --adapt         adaptive protocol: calibrate the rate against\n"
      "                  the live noise, then deliver via ARQ (run/"
      "campaign)\n"
      "  --calibration P full|warm (adaptive cells; default full).\n"
      "                  warm: the first cell of each identical link\n"
      "                  calibrates fully, later cells reuse its pick\n"
      "                  (run/campaign)\n"
      "  --bond N        bonded link: stripe the payload across N\n"
      "                  calibrated sub-channel pairs in one simulation\n"
      "                  (run; implies the adaptive stack per pair)\n"
      "  --spec FILE     run a SessionSpec JSON file (see `plan --print`)\n"
      "  --message TEXT  payload for `text`\n"
      "  --param P --from A --to B --step D   sweep controls "
      "(t1|t0|interval)\n"
      "  --json          machine-readable output (run/campaign)\n"
      "plan options:\n"
      "  --print             emit the default SessionSpec JSON template\n"
      "  --print-campaign    emit the default campaign PlanSpec template\n"
      "campaign options:\n"
      "  --plan FILE     expand a PlanSpec JSON file instead of axis "
      "flags\n"
      "  --mechanisms L  paper|all|comma list (default paper: the six "
      "Table IV MESMs)\n"
      "  --scenarios L   comma list of scenario-library names "
      "(default local)\n"
      "  --protocols L   comma list of fixed|arq|adaptive (default fixed)\n"
      "  --pairs L       comma list of bonded pair counts, e.g. 1,4,8\n"
      "                  (cells with N > 1 stripe over a bonded link)\n"
      "  --seeds K       seed replicates per grid point (default 1)\n"
      "  --jobs J        worker threads (default: hardware concurrency)\n"
      "  --csv PATH      per-cell CSV emission ('-' = stdout)\n"
      "  --shard i/N     run only cells with flat %% N == i (one of N\n"
      "                  independent processes over the same plan)\n"
      "  --records PATH  stream finished cells to a JSONL record file\n"
      "                  (the shard output / --merge input format)\n"
      "  --checkpoint F  resumable run: skip cells already recorded in F,\n"
      "                  append new cells as they finish, then emit the\n"
      "                  full output (byte-identical to an uninterrupted "
      "run)\n"
      "  --merge LIST    comma list of record files: emit the merged\n"
      "                  campaign without running any cells "
      "(byte-identical\n"
      "                  to the single-process run of the same plan)\n");
}

// Flag registry: which flags exist at all, whether they take a value,
// which subcommands they apply to, and whether they configure the
// experiment itself (`configures`) — the latter is what decides which
// flags conflict with a `--spec`/`--plan` file, so there is exactly
// one table to extend. Anything off this table — a misspelled flag, a
// campaign flag on `run` — is a hard parse error.
struct FlagDef {
  const char* name;
  bool has_value;
  const char* commands;  // space-separated subcommand list
  bool configures = false;
};

const std::vector<FlagDef>& flag_defs()
{
  static const std::vector<FlagDef> defs = {
      {"--mechanism", true, "run sweep text", true},
      {"--scenario", true, "run sweep text", true},
      {"--hypervisor", true, "run sweep text campaign", true},
      {"--bits", true, "run sweep campaign", true},
      {"--seed", true, "run sweep text campaign", true},
      {"--width", true, "run sweep text campaign", true},
      {"--t1", true, "run sweep text campaign", true},
      {"--t0", true, "run sweep text campaign", true},
      {"--interval", true, "run sweep text campaign", true},
      {"--fuzz", true, "run sweep text campaign", true},
      {"--fec", false, "run", true},
      {"--adapt", false, "run campaign", true},
      {"--calibration", true, "run campaign", true},
      {"--bond", true, "run", true},
      {"--spec", true, "run"},
      {"--message", true, "text"},
      {"--param", true, "sweep"},
      {"--from", true, "sweep"},
      {"--to", true, "sweep"},
      {"--step", true, "sweep"},
      {"--json", false, "run campaign"},
      {"--plan", true, "campaign"},
      {"--mechanisms", true, "campaign", true},
      {"--scenarios", true, "campaign", true},
      {"--protocols", true, "campaign", true},
      {"--pairs", true, "campaign", true},
      {"--seeds", true, "campaign", true},
      {"--jobs", true, "campaign"},
      {"--csv", true, "campaign"},
      {"--shard", true, "campaign"},
      {"--records", true, "campaign"},
      {"--checkpoint", true, "campaign"},
      {"--merge", true, "campaign"},
      {"--print", false, "plan"},
      {"--print-campaign", false, "plan"},
  };
  return defs;
}

bool command_allows(const FlagDef& def, const std::string& command)
{
  std::stringstream stream{def.commands};
  std::string item;
  while (stream >> item) {
    if (item == command) return true;
  }
  return false;
}

// A spec/plan file IS the configuration; any config-shaping flag the
// command line also carried would silently fight it. Derived from the
// one flag table so new flags inherit the check. `allowed` lists the
// file-compatible exceptions (e.g. `run --spec` still takes --bits:
// payload size is not part of a SessionSpec).
bool reject_file_conflicts(const Options& opt, const char* file_flag,
                           std::initializer_list<const char*> allowed)
{
  for (const FlagDef& def : flag_defs()) {
    if (!def.configures || !command_allows(def, opt.command) ||
        !opt.has(def.name)) {
      continue;
    }
    bool exempt = false;
    for (const char* name : allowed) {
      if (std::strcmp(def.name, name) == 0) {
        exempt = true;
        break;
      }
    }
    if (exempt) continue;
    std::fprintf(stderr, "%s conflicts with %s (edit the file instead)\n",
                 def.name, file_flag);
    return false;
  }
  return true;
}

bool parse_flag_value(const std::string& flag, const char* value,
                      Options& opt)
{
  // Numeric values parse strictly: the whole token must be a number,
  // or the flag errors out — `--seed banana` or `--bits 2Ok` must not
  // silently run an experiment at 0.
  const auto numeric = [&](auto parse) {
    errno = 0;
    char* end = nullptr;
    auto parsed = parse(value, &end);
    if (value[0] == '\0' || end == nullptr || *end != '\0' ||
        errno == ERANGE || value[0] == '-') {
      std::fprintf(stderr, "option %s wants a number, got '%s'\n",
                   flag.c_str(), value);
      return std::optional<decltype(parsed)>{};
    }
    return std::optional{parsed};
  };
  const auto u64_of = [&](std::uint64_t& out) {
    // Base 0: hex seeds ("0x1E6AC7") stay supported.
    const auto v = numeric([](const char* s, char** end) {
      return std::strtoull(s, end, 0);
    });
    if (v) out = *v;
    return v.has_value();
  };
  const auto size_of = [&](std::size_t& out) {
    const auto v = numeric([](const char* s, char** end) {
      return std::strtoull(s, end, 10);
    });
    if (v) out = static_cast<std::size_t>(*v);
    return v.has_value();
  };
  if (flag == "--mechanism") {
    const std::optional<Mechanism> m = api::parse_mechanism(value);
    if (!m) {
      std::fprintf(stderr, "unknown mechanism %s (try `mes_cli list`)\n",
                   value);
      return false;
    }
    opt.mechanism = *m;
    return true;
  }
  if (flag == "--scenario") {
    if (resolve_scenario(value) == nullptr) {
      std::fprintf(stderr, "unknown scenario %s (try list-scenarios)\n",
                   value);
      return false;
    }
    opt.scenario = value;
    return true;
  }
  if (flag == "--hypervisor") {
    const std::optional<HypervisorType> h = api::parse_hypervisor(value);
    if (!h || *h == HypervisorType::none) {
      std::fprintf(stderr, "--hypervisor wants type1 or type2\n");
      return false;
    }
    opt.hypervisor = *h;
    return true;
  }
  if (flag == "--bits") return size_of(opt.bits);
  if (flag == "--seed") return u64_of(opt.seed);
  if (flag == "--width") return size_of(opt.width);
  if (flag == "--t1" || flag == "--t0" || flag == "--interval" ||
      flag == "--fuzz" || flag == "--from" || flag == "--to" ||
      flag == "--step") {
    const auto parsed = numeric([](const char* s, char** end) {
      return std::strtod(s, end);
    });
    if (!parsed) return false;
    const double v = *parsed;
    if (flag == "--step" && v == 0.0) {
      std::fprintf(stderr, "--step must be nonzero (a zero step sweeps "
                           "forever)\n");
      return false;
    }
    if (flag == "--t1") opt.t1 = v;
    else if (flag == "--t0") opt.t0 = v;
    else if (flag == "--interval") opt.interval = v;
    else if (flag == "--fuzz") opt.fuzz = v;
    else if (flag == "--from") opt.from = v;
    else if (flag == "--to") opt.to = v;
    else opt.step = v;
    return true;
  }
  if (flag == "--bond") {
    if (!size_of(opt.bond)) return false;
    if (opt.bond == 0 || opt.bond > 4096) {
      std::fprintf(stderr, "--bond wants 1..4096 pairs\n");
      return false;
    }
    return true;
  }
  if (flag == "--calibration") {
    const std::optional<CalibrationPolicy> policy =
        api::parse_calibration(value);
    if (!policy) {
      std::fprintf(stderr, "--calibration wants full or warm, got '%s'\n",
                   value);
      return false;
    }
    opt.calibration = *policy;
    return true;
  }
  if (flag == "--spec") { opt.spec_path = value; return true; }
  if (flag == "--message") { opt.message = value; return true; }
  if (flag == "--param") { opt.param = value; return true; }
  if (flag == "--plan") { opt.plan_path = value; return true; }
  if (flag == "--mechanisms") { opt.mechanisms = value; return true; }
  if (flag == "--scenarios") { opt.scenarios = value; return true; }
  if (flag == "--protocols") { opt.protocols = value; return true; }
  if (flag == "--pairs") { opt.pairs = value; return true; }
  if (flag == "--seeds") return size_of(opt.repeats);
  if (flag == "--jobs") return size_of(opt.jobs);
  if (flag == "--csv") { opt.csv = value; return true; }
  if (flag == "--shard") { opt.shard = value; return true; }
  if (flag == "--records") { opt.records = value; return true; }
  if (flag == "--checkpoint") { opt.checkpoint = value; return true; }
  if (flag == "--merge") { opt.merge = value; return true; }
  return false;
}

bool parse(int argc, char** argv, Options& opt)
{
  if (argc < 2) return false;
  opt.command = argv[1];
  static const std::set<std::string> commands = {
      "run", "sweep", "campaign", "plan", "text", "list", "list-scenarios"};
  if (!commands.contains(opt.command)) {
    std::fprintf(stderr, "unknown command '%s'\n", opt.command.c_str());
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const FlagDef* def = nullptr;
    for (const FlagDef& candidate : flag_defs()) {
      if (arg == candidate.name) {
        def = &candidate;
        break;
      }
    }
    if (def == nullptr) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    }
    if (!command_allows(*def, opt.command)) {
      std::fprintf(stderr, "option %s does not apply to '%s'\n", arg.c_str(),
                   opt.command.c_str());
      return false;
    }
    const char* value = nullptr;
    if (def->has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option %s needs a value\n", arg.c_str());
        return false;
      }
      value = argv[++i];
      // A flag of this subcommand in value position means the value was
      // forgotten: `run --seed --json` must not silently run seed 0
      // without JSON output. Only same-command flags are checked, so an
      // off-command flag name stays usable as a literal value (e.g.
      // `text --message "--json"`).
      for (const FlagDef& other : flag_defs()) {
        if (value == std::string_view{other.name} &&
            command_allows(other, opt.command)) {
          std::fprintf(stderr, "option %s needs a value (got the flag %s)\n",
                       arg.c_str(), value);
          return false;
        }
      }
    }
    opt.seen.insert(arg);
    if (arg == "--fec") opt.fec = true;
    else if (arg == "--adapt") opt.adapt = true;
    else if (arg == "--json") opt.json = true;
    else if (arg == "--print") opt.print_session = true;
    else if (arg == "--print-campaign") opt.print_campaign = true;
    else if (!parse_flag_value(arg, value, opt)) return false;
  }
  return true;
}

std::string timing_string(Mechanism m, const TimingConfig& t)
{
  char buf[64];
  if (class_of(m) == ChannelClass::contention) {
    std::snprintf(buf, sizeof buf, "t1=%.0f t0=%.0f", t.t1.to_us(),
                  t.t0.to_us());
  } else {
    std::snprintf(buf, sizeof buf, "tw0=%.0f ti=%.0f", t.t0.to_us(),
                  t.interval.to_us());
  }
  return buf;
}

// The façade construction every flags-driven command shares: flags ->
// layered SessionSpec. Timing overrides land on the paper Timeset of
// (mechanism, anchor scenario), exactly like the legacy config builder.
api::SessionSpec spec_from(const Options& opt)
{
  api::SessionSpec spec;
  spec.stack.mechanism = opt.mechanism;
  spec.stack.scenario = opt.scenario;
  spec.stack.hypervisor = opt.hypervisor;
  spec.stack.seed = opt.seed;
  spec.stack.mitigation_fuzz = Duration::us(opt.fuzz);

  if (opt.t1 >= 0 || opt.t0 >= 0 || opt.interval >= 0) {
    const scenario::ScenarioDef& def = *resolve_scenario(opt.scenario);
    TimingConfig timing = paper_timeset(opt.mechanism, def.legacy);
    if (opt.t1 >= 0) timing.t1 = Duration::us(opt.t1);
    if (opt.t0 >= 0) timing.t0 = Duration::us(opt.t0);
    if (opt.interval >= 0) timing.interval = Duration::us(opt.interval);
    spec.link.timing = timing;
  }
  spec.link.symbol_bits = opt.width;
  spec.link.sync_bits = 8 * opt.width;

  // --bond implies the per-pair adaptive stack (the usage text says
  // so); the spec layer validates that invariant.
  if (opt.bond > 1) {
    spec.link.pairs = opt.bond;
    spec.protocol = ProtocolMode::adaptive;
  }
  if (opt.adapt) spec.protocol = ProtocolMode::adaptive;
  spec.link.calibration = opt.calibration;
  return spec;
}

ExperimentConfig config_from(const Options& opt)
{
  return api::from_specs(spec_from(opt));
}

void print_report(const ChannelReport& rep, std::size_t payload_bits)
{
  if (!rep.ok) {
    std::printf("FAILED: %s\n", rep.failure_reason.c_str());
    return;
  }
  std::printf("mechanism : %s (%s), scenario %s\n", to_string(rep.mechanism),
              to_string(class_of(rep.mechanism)), to_string(rep.scenario));
  std::printf("payload   : %zu bits, preamble %s\n", payload_bits,
              rep.sync_ok ? "verified" : "FAILED");
  std::printf("BER       : %.4f%%\n", rep.ber_percent());
  std::printf("TR        : %.3f kb/s   (BSC capacity bound %.3f kb/s)\n",
              rep.throughput_kbps(),
              analysis::effective_capacity_bps(rep.throughput_bps, rep.ber) /
                  1000.0);
  std::printf("elapsed   : %s\n", to_string(rep.elapsed).c_str());
}

bool read_file(const std::string& path, std::string& out)
{
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

// Shared --spec/--plan loader: read, parse (Spec::parse), report the
// parse error with the file path. One implementation for both paths.
template <typename Spec>
bool load_spec_file(const std::string& path, Spec& out)
{
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  try {
    out = Spec::parse(text);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

int cmd_run(const Options& opt)
{
  api::SessionSpec spec;
  if (!opt.spec_path.empty()) {
    if (!reject_file_conflicts(opt, "--spec", {"--bits"})) return 2;
    if (!load_spec_file(opt.spec_path, spec)) return 2;
  } else {
    if (opt.width == 0) {
      std::fprintf(stderr, "--width must be at least 1\n");
      return 2;
    }
    spec = spec_from(opt);
  }

  api::Session session = api::Session::open(spec);
  if (!session.is_open()) {
    std::fprintf(stderr, "invalid spec: %s\n", session.error().c_str());
    return 2;
  }

  const std::size_t width = std::max<std::size_t>(spec.link.symbol_bits, 1);
  Rng rng{spec.stack.seed ^ 0xC11u};
  const std::size_t n = opt.bits - opt.bits % width;
  const BitVec secret = BitVec::random(rng, n);

  if (spec.link.pairs > 1) {
    if (opt.fec) {
      std::fprintf(stderr, "--fec and --bond are mutually exclusive: the "
                           "bonded link already FEC-protects every "
                           "stripe\n");
      return 2;
    }
    const ChannelReport rep = session.transfer(secret);
    if (opt.json) {
      std::printf("%s\n", exec::report_json(rep, secret.size()).c_str());
      return rep.ok && rep.sync_ok ? 0 : 1;
    }
    print_report(rep, secret.size());
    const proto::BondReport& bond = *session.bond();
    TextTable table({"sub-channel", "mechanism", "calibrated", "margin",
                     "weight(kb/s)", "burst", "delivered", "sends",
                     "state"});
    for (std::size_t i = 0; i < bond.channels.size(); ++i) {
      const proto::BondChannelReport& ch = bond.channels[i];
      table.add_row(
          {std::to_string(i), to_string(ch.mechanism),
           ch.calibrated ? "yes" : "no",
           ch.calibrated ? TextTable::num(ch.margin, 1) : "-",
           ch.calibrated ? TextTable::num(ch.weight_bps / 1000.0, 3) : "-",
           std::to_string(ch.burst),
           std::to_string(ch.stripes_delivered),
           std::to_string(ch.stripe_sends),
           ch.degraded ? "DEGRADED" : (ch.calibrated ? "ok" : ch.error)});
    }
    table.print();
    std::printf("bond      : %zu/%zu pairs live, %zu stripes in %zu waves "
                "(%zu retransmits, %zu rebalanced), aggregate %.3f kb/s\n",
                bond.pairs_live, bond.pairs_requested, bond.stripes,
                bond.waves, bond.retransmits, bond.rebalances,
                bond.aggregate_goodput_bps / 1000.0);
    return rep.ok && rep.sync_ok ? 0 : 1;
  }

  if (spec.protocol != ProtocolMode::fixed) {
    if (opt.fec) {
      std::fprintf(stderr, "--fec and --adapt are mutually exclusive: the "
                           "adaptive protocol already FEC-protects every "
                           "ARQ frame\n");
      return 2;
    }
    const ChannelReport rep = session.transfer(secret);
    if (opt.json) {
      std::printf("%s\n", exec::report_json(rep, secret.size()).c_str());
      return rep.ok && rep.sync_ok ? 0 : 1;
    }
    print_report(rep, secret.size());
    if (session.calibration() && session.calibration()->ok) {
      const proto::Calibration& cal = *session.calibration();
      std::printf("calibrated: %s (x%.2f), margin %.1f, symbol err "
                  "%.2f%%, %zu probes in %s\n",
                  timing_string(spec.stack.mechanism, cal.timing).c_str(),
                  cal.scale, cal.margin, cal.symbol_error * 100.0,
                  cal.probes_sent, to_string(cal.elapsed).c_str());
    }
    if (rep.proto) {
      std::printf("ARQ       : %zu frames, %zu sends (%zu retransmits)\n",
                  rep.proto->frames, rep.proto->frame_sends,
                  rep.proto->retransmits);
    }
    return rep.ok && rep.sync_ok ? 0 : 1;
  }

  if (opt.json) {
    const BitVec payload = opt.fec ? codec::fec_protect(secret, 7) : secret;
    const ChannelReport rep = session.transfer(payload);
    std::string json = exec::report_json(rep, payload.size());
    if (opt.fec && rep.ok) {
      const auto recovered = codec::fec_recover(rep.received_payload, 7);
      const std::size_t residual = secret.hamming_distance(
          recovered.data.slice(0, secret.size()));
      char fec_buf[160];
      std::snprintf(fec_buf, sizeof fec_buf,
                    ",\"fec\":{\"corrected\":%zu,\"residual_errors\":%zu,"
                    "\"residual_ber\":%g,\"goodput_bps\":%g}}",
                    recovered.corrected, residual,
                    secret.empty() ? 0.0
                                   : static_cast<double>(residual) /
                                         static_cast<double>(secret.size()),
                    rep.throughput_bps * 4.0 / 7.0);
      json.replace(json.size() - 1, 1, fec_buf);
    }
    std::printf("%s\n", json.c_str());
    return rep.ok ? 0 : 1;
  }
  if (!opt.fec) {
    const ChannelReport rep = session.transfer(secret);
    print_report(rep, secret.size());
    return rep.ok ? 0 : 1;
  }
  const BitVec coded = codec::fec_protect(secret, 7);
  const ChannelReport rep = session.transfer(coded);
  print_report(rep, coded.size());
  if (!rep.ok) return 1;
  const auto recovered = codec::fec_recover(rep.received_payload, 7);
  const std::size_t residual =
      secret.hamming_distance(recovered.data.slice(0, secret.size()));
  std::printf("FEC       : corrected %zu codewords; residual errors %zu "
              "(%.4f%%); goodput %.3f kb/s\n",
              recovered.corrected, residual,
              100.0 * static_cast<double>(residual) /
                  static_cast<double>(secret.size()),
              rep.throughput_kbps() * 4.0 / 7.0);
  return 0;
}

int cmd_sweep(const Options& opt)
{
  std::vector<double> xs;
  for (double x = opt.from; x <= opt.to + 1e-9; x += opt.step) {
    xs.push_back(x);
  }
  const auto points = analysis::sweep(
      xs, opt.bits, opt.seed, [&](double x) {
        Options point = opt;
        if (opt.param == "t1") point.t1 = x;
        else if (opt.param == "t0") point.t0 = x;
        else point.interval = x;
        return config_from(point);
      });
  TextTable table({opt.param + "(us)", "BER(%)", "TR(kb/s)",
                   "capacity(kb/s)"});
  for (const auto& p : points) {
    table.add_row(
        {TextTable::num(p.x, 0),
         p.ok ? TextTable::num(p.ber * 100.0, 3) : "-",
         p.ok ? TextTable::num(p.throughput_bps / 1000.0, 3) : "-",
         p.ok ? TextTable::num(analysis::effective_capacity_bps(
                                   p.throughput_bps, p.ber) /
                                   1000.0,
                               3)
              : p.failure});
  }
  table.print();
  return 0;
}

std::vector<std::string> split_list(const std::string& csv_list)
{
  std::vector<std::string> items;
  std::stringstream stream{csv_list};
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

// Flags -> campaign PlanSpec (the same data `--plan file.json` parses).
bool plan_spec_from(const Options& opt, api::PlanSpec& plan)
{
  if (opt.mechanisms == "paper") {
    plan.mechanisms = {Mechanism::flock, Mechanism::file_lock_ex,
                       Mechanism::mutex, Mechanism::semaphore,
                       Mechanism::event, Mechanism::waitable_timer};
  } else if (opt.mechanisms == "all") {
    plan.mechanisms.clear();
    for (const auto& [name, mechanism] : mechanisms_alphabetical()) {
      (void)name;
      plan.mechanisms.push_back(mechanism);
    }
  } else {
    plan.mechanisms.clear();
    for (const std::string& name : split_list(opt.mechanisms)) {
      const std::optional<Mechanism> m = api::parse_mechanism(name);
      if (!m) {
        std::fprintf(stderr, "unknown mechanism %s\n", name.c_str());
        return false;
      }
      plan.mechanisms.push_back(*m);
    }
  }

  plan.scenarios.clear();
  for (const std::string& name : split_list(opt.scenarios)) {
    if (resolve_scenario(name) == nullptr) {
      std::fprintf(stderr, "unknown scenario %s (try list-scenarios)\n",
                   name.c_str());
      return false;
    }
    plan.scenarios.push_back({name, opt.hypervisor});
  }
  if (plan.mechanisms.empty() || plan.scenarios.empty()) {
    std::fprintf(stderr, "campaign needs at least one mechanism and one "
                         "scenario\n");
    return false;
  }

  // Protocol axis: --protocols wins, --adapt alone means adaptive-only.
  if (!opt.protocols.empty()) {
    plan.protocols.clear();
    for (const std::string& name : split_list(opt.protocols)) {
      const std::optional<ProtocolMode> mode = api::parse_protocol(name);
      if (!mode) {
        std::fprintf(stderr, "unknown protocol %s\n", name.c_str());
        return false;
      }
      plan.protocols.push_back(*mode);
    }
    if (plan.protocols.empty()) {
      std::fprintf(stderr, "--protocols needs at least one value\n");
      return false;
    }
  } else if (opt.adapt) {
    plan.protocols = {ProtocolMode::adaptive};
  }

  // Bonded-pairs axis: cells with N > 1 stripe the payload over a
  // bonded link of N calibrated sub-channels (proto/bond).
  if (!opt.pairs.empty()) {
    plan.pairs.clear();
    for (const std::string& item : split_list(opt.pairs)) {
      char* end = nullptr;
      const std::size_t n_pairs =
          static_cast<std::size_t>(std::strtoull(item.c_str(), &end, 10));
      // Strict: the whole item must be a number ("4x" is a typo, not
      // 4), negatives wrap through strtoull, and 4096 caps the range.
      if (item[0] == '-' || *end != '\0' || n_pairs == 0 ||
          n_pairs > 4096) {
        std::fprintf(stderr, "--pairs values must be 1..4096\n");
        return false;
      }
      plan.pairs.push_back(n_pairs);
    }
    if (plan.pairs.empty()) {
      std::fprintf(stderr, "--pairs needs at least one value\n");
      return false;
    }
  }

  plan.repeats = std::max<std::size_t>(opt.repeats, 1);
  plan.seed_base = opt.seed;
  plan.payload_bits = opt.bits;
  plan.session.link.symbol_bits = opt.width;
  plan.session.link.sync_bits = 8 * opt.width;
  plan.session.link.calibration = opt.calibration;
  plan.session.stack.mitigation_fuzz = Duration::us(opt.fuzz);
  return true;
}

// "--shard i/N" -> ShardSpec; strict like every other numeric flag.
bool parse_shard(const std::string& text, exec::ShardSpec& shard)
{
  const std::size_t slash = text.find('/');
  const auto number = [](const std::string& s, std::size_t& out) {
    if (s.empty() || s[0] == '-') return false;
    char* end = nullptr;
    errno = 0;
    out = static_cast<std::size_t>(std::strtoull(s.c_str(), &end, 10));
    return end != nullptr && *end == '\0' && errno != ERANGE;
  };
  if (slash == std::string::npos ||
      !number(text.substr(0, slash), shard.index) ||
      !number(text.substr(slash + 1), shard.count)) {
    std::fprintf(stderr, "--shard wants i/N (e.g. 0/4), got '%s'\n",
                 text.c_str());
    return false;
  }
  if (const std::string err = shard.validate(); !err.empty()) {
    std::fprintf(stderr, "--shard: %s\n", err.c_str());
    return false;
  }
  return true;
}

int cmd_campaign(const Options& opt)
{
  api::PlanSpec plan_spec;
  if (!opt.plan_path.empty()) {
    if (!reject_file_conflicts(opt, "--plan", {})) return 2;
    if (!load_spec_file(opt.plan_path, plan_spec)) return 2;
  } else if (!plan_spec_from(opt, plan_spec)) {
    return 2;
  }

  // The shard the plan file baked in; an explicit --shard i/N wins.
  exec::ShardSpec shard{plan_spec.shard_index, plan_spec.shard_count};
  if (!opt.shard.empty() && !parse_shard(opt.shard, shard)) return 2;
  if (!opt.merge.empty()) {
    // A merge re-emits the whole grid from finished shard records; a
    // shard selector or a checkpoint under it has no coherent meaning.
    if (opt.has("--shard") || !opt.checkpoint.empty()) {
      std::fprintf(stderr, "--merge conflicts with --shard/--checkpoint "
                           "(a merge covers the whole grid)\n");
      return 2;
    }
    shard = exec::ShardSpec{};
  }
  if (opt.json && opt.csv == "-") {
    std::fprintf(stderr, "--json and --csv - both stream to stdout; "
                         "give --csv a file path\n");
    return 2;
  }

  exec::ExperimentPlan plan;
  try {
    plan = plan_spec.to_plan();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid plan: %s\n", e.what());
    return 2;
  }
  // Explicit timing flags override on top of the per-cell Timeset, like
  // `run` does (flags path only; a plan file names its timings axis).
  if (opt.t1 >= 0 || opt.t0 >= 0 || opt.interval >= 0) {
    const auto inner = plan.tweak;
    const double t1 = opt.t1, t0 = opt.t0, interval = opt.interval;
    plan.tweak = [inner, t1, t0, interval](ExperimentConfig& cfg,
                                           const exec::CellCoord& coord) {
      if (inner) inner(cfg, coord);
      if (t1 >= 0) cfg.timing.t1 = Duration::us(t1);
      if (t0 >= 0) cfg.timing.t0 = Duration::us(t0);
      if (interval >= 0) cfg.timing.interval = Duration::us(interval);
    };
  }

  // Output sinks. Everything streams: a finished cell is written and
  // destroyed, so a million-cell campaign holds O(points), not O(cells).
  std::ofstream csv_file;
  std::ostream* csv = nullptr;
  if (!opt.csv.empty()) {
    if (opt.csv == "-") {
      csv = &std::cout;
    } else {
      csv_file.open(opt.csv);
      if (!csv_file) {
        std::fprintf(stderr, "cannot open %s\n", opt.csv.c_str());
        return 1;
      }
      csv = &csv_file;
    }
  }
  std::ofstream records_file;
  if (!opt.records.empty()) {
    records_file.open(opt.records);
    if (!records_file) {
      std::fprintf(stderr, "cannot open %s\n", opt.records.c_str());
      return 1;
    }
  }
  if (csv) exec::write_csv_header(*csv);
  if (opt.json) exec::write_json_open(std::cout);
  std::size_t emitted = 0;
  const auto emit = [&](const exec::CellResult& c) {
    if (records_file.is_open()) {
      records_file << exec::cell_record_line(c) << '\n';
    }
    if (csv) exec::write_csv_row(*csv, c);
    if (opt.json) exec::write_json_cell(std::cout, c, emitted);
    ++emitted;
  };

  exec::CampaignSummary summary;
  std::size_t resumed = 0;
  try {
    if (!opt.merge.empty()) {
      // A record file listed twice would silently collapse into one
      // reports.merge() contribution — reject the typo up front.
      std::set<std::string> merge_paths;
      for (const std::string& path : split_list(opt.merge)) {
        if (!merge_paths.insert(path).second) {
          std::fprintf(stderr, "--merge lists '%s' twice\n", path.c_str());
          return 2;
        }
      }
      std::map<std::size_t, ChannelReport> reports;
      for (const std::string& path : split_list(opt.merge)) {
        std::ifstream in{path};
        if (!in) {
          std::fprintf(stderr, "cannot open %s\n", path.c_str());
          return 1;
        }
        reports.merge(exec::read_records(in));
      }
      summary = exec::replay_records(plan, shard, std::move(reports), emit);
    } else {
      std::vector<exec::CampaignCell> cells =
          exec::shard_cells(exec::expand(plan), shard);
      const exec::CampaignRunner runner{opt.jobs};
      if (!opt.checkpoint.empty()) {
        // Two-phase resumable run: (1) run only the unrecorded cells,
        // appending each to the checkpoint as it finishes; (2) replay
        // the now-complete record set through the output sinks. The
        // emission never mixes fresh and recorded cells, so a resumed
        // run's output is byte-identical to an uninterrupted one.
        std::map<std::size_t, ChannelReport> done;
        if (std::ifstream in{opt.checkpoint}; in) {
          done = exec::read_records(in);
        }
        resumed = done.size();
        cells = exec::skip_completed(std::move(cells), done);
        done.clear();
        {
          std::ofstream ck{opt.checkpoint, std::ios::app};
          if (!ck) {
            std::fprintf(stderr, "cannot open %s\n", opt.checkpoint.c_str());
            return 1;
          }
          runner.run_stream(std::move(cells),
                            [&](const exec::CellResult& c) {
                              ck << exec::cell_record_line(c) << '\n';
                              ck.flush();  // survive a mid-run kill
                            });
        }
        std::ifstream in{opt.checkpoint};
        summary = exec::replay_records(plan, shard,
                                       exec::read_records(in), emit);
      } else {
        summary = runner.run_stream(std::move(cells), emit);
      }
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "campaign: %s\n", e.what());
    return 1;
  }

  // A campaign where *nothing* could run (every cell failed setup or
  // validation) is a failure for scripts, like cmd_run's rep.ok.
  const int exit_code = summary.cells_ok() > 0 ? 0 : 1;

  if (opt.json) {
    exec::write_json_close(std::cout, summary.points, summary.by_mechanism,
                           summary.by_scenario);
    return exit_code;
  }

  std::printf("campaign: %zu cells (%zu mechanisms x %zu scenarios x %zu "
              "protocols x %zu pair counts x %zu seeds), %zu jobs\n",
              summary.cells(), plan.mechanisms.size(),
              plan.scenarios.size(), plan.protocols.size(),
              plan.pairs.size(), plan.repeats,
              exec::CampaignRunner{opt.jobs}.jobs());
  if (shard.active()) {
    std::printf("shard %zu/%zu: %zu of %zu grid cells\n", shard.index,
                shard.count, summary.cells(), plan.cell_count());
  }
  if (!opt.checkpoint.empty()) {
    std::printf("checkpoint %s: %zu cells resumed, %zu run\n",
                opt.checkpoint.c_str(), resumed, summary.cells() - resumed);
  }
  TextTable table({"point", "cells", "sync", "mean BER(%)", "max BER(%)",
                   "mean TR(kb/s)", "capacity(kb/s)"});
  for (const exec::GroupStats& g : summary.points) {
    table.add_row(
        {g.key, std::to_string(g.cells),
         std::to_string(g.sync_ok) + "/" + std::to_string(g.cells),
         g.ok ? TextTable::num(g.mean_ber * 100.0, 3) : "-",
         g.ok ? TextTable::num(g.max_ber * 100.0, 3) : "-",
         g.ok ? TextTable::num(g.mean_throughput_bps / 1000.0, 3) : "-",
         g.ok ? TextTable::num(analysis::effective_capacity_bps(
                                   g.mean_throughput_bps, g.mean_ber) /
                                   1000.0,
                               3)
              : "setup failed"});
  }
  table.print();

  if (plan.scenarios.size() > 1) {
    std::printf("\nmarginals by scenario:\n");
    TextTable marg({"scenario", "cells", "sync", "mean BER(%)",
                    "mean TR(kb/s)"});
    for (const exec::GroupStats& g : summary.by_scenario) {
      marg.add_row(
          {g.key, std::to_string(g.cells),
           std::to_string(g.sync_ok) + "/" + std::to_string(g.cells),
           g.ok ? TextTable::num(g.mean_ber * 100.0, 3) : "-",
           g.ok ? TextTable::num(g.mean_throughput_bps / 1000.0, 3) : "-"});
    }
    marg.print();
  }
  return exit_code;
}

int cmd_plan(const Options& opt)
{
  if (opt.print_session == opt.print_campaign) {
    std::fprintf(stderr, "plan wants exactly one of --print (SessionSpec "
                         "template) or --print-campaign (campaign "
                         "template)\n");
    return 2;
  }
  if (opt.print_session) {
    std::fputs(api::SessionSpec{}.to_json_text().c_str(), stdout);
  } else {
    std::fputs(api::PlanSpec{}.to_json_text().c_str(), stdout);
  }
  return 0;
}

int cmd_text(const Options& opt)
{
  if (opt.message.empty()) {
    std::fprintf(stderr, "text requires --message\n");
    return 2;
  }
  api::SessionSpec spec = spec_from(opt);
  spec.max_rounds = 8;  // §V.B round protocol
  api::Session session = api::Session::open(spec);
  if (!session.is_open()) {
    std::fprintf(stderr, "invalid spec: %s\n", session.error().c_str());
    return 2;
  }
  session.send_text(opt.message);
  const ChannelReport& rep = session.last_report();
  print_report(rep, opt.message.size() * 8);
  if (rep.ok && rep.sync_ok) {
    std::printf("rounds    : %zu\n", session.stats().rounds);
    const std::string received = session.recv_text();
    std::printf("received  : \"%s\"\n",
                rep.ber == 0.0 ? received.c_str() : "<bit errors>");
  }
  return rep.ok ? 0 : 1;
}

int cmd_list_scenarios()
{
  TextTable table({"scenario", "layers", "noise regime", "anchor",
                   "aliases"});
  for (const scenario::ScenarioDef& def : scenario::library()) {
    const ScenarioProfile profile =
        def.build(OsFlavor::windows, HypervisorType::none);
    std::string layers;
    for (const std::string& layer : profile.layers) {
      if (!layers.empty()) layers += " + ";
      layers += layer;
    }
    std::string aliases;
    for (const std::string& alias : def.aliases) {
      if (!aliases.empty()) aliases += ",";
      aliases += alias;
    }
    table.add_row({def.name, layers,
                   profile.make_noise(1)->describe(),
                   to_string(def.legacy), aliases});
  }
  table.print();
  std::printf("%zu scenarios (%zu non-stationary); campaign axis: "
              "--scenarios name,name,...\n",
              scenario::library().size(),
              static_cast<std::size_t>(
                  std::count_if(scenario::library().begin(),
                                scenario::library().end(),
                                [](const scenario::ScenarioDef& d) {
                                  return d.non_stationary;
                                })));
  return 0;
}

int cmd_list()
{
  TextTable table({"mechanism", "class", "OS", "local Timeset"});
  for (const auto& [name, mechanism] : mechanisms_alphabetical()) {
    const TimingConfig t = paper_timeset(mechanism, Scenario::local);
    table.add_row({name, to_string(class_of(mechanism)),
                   flavor_of(mechanism) == OsFlavor::windows ? "windows"
                                                             : "linux",
                   timing_string(mechanism, t)});
  }
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv)
{
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (opt.command == "run") return cmd_run(opt);
  if (opt.command == "sweep") return cmd_sweep(opt);
  if (opt.command == "campaign") return cmd_campaign(opt);
  if (opt.command == "plan") return cmd_plan(opt);
  if (opt.command == "text") return cmd_text(opt);
  if (opt.command == "list") return cmd_list();
  if (opt.command == "list-scenarios") return cmd_list_scenarios();
  usage();
  return 2;
}
