// mes_lint — the repo's determinism / coroutine-lifetime invariant checker.
//
// Every guarantee the reproduction sells — bit-identical `--jobs 1` vs
// `--jobs N` campaigns, seed-stable noise streams, safe bare-handle
// coroutine resumes on the event hot path — used to be enforced only by
// convention and golden files. This library turns the written-down
// invariants into named, suppressible build failures. It is a
// token-level (AST-lite) scanner: no libclang, no compiler dependency,
// deterministic output, fast enough to run as a tier-1 test.
//
// Rules (see TESTING.md "Static analysis & sanitizers" for the full
// catalogue with rationale):
//
//   no-wallclock            host time / entropy sources outside src/native/
//   no-unordered-iteration  iterating unordered_{map,set} on emission paths
//   coro-lifetime           dangling-prone coroutine signatures, raw resumes
//   hot-path-pod            allocating/indirect members in hot-pod structs
//   checked-errors          discarded error results from Vfs/Kernel calls
//
// Suppression: a finding is allowed by an inline comment on the same
// line (or a comment-only line directly above):
//
//     // mes-lint: allow(rule-name[, rule-name...]) <justification>
//
// The justification is mandatory; an allow() without one is itself
// reported (rule "bad-allow", which cannot be suppressed). Structs are
// opted into hot-path-pod with a `// mes-lint: hot-pod` comment
// immediately above the struct/class declaration.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mes::lint {

enum class Rule {
  no_wallclock,
  no_unordered_iteration,
  coro_lifetime,
  hot_path_pod,
  checked_errors,
  // Malformed `mes-lint:` directives (unknown rule name, missing
  // justification). Internal; never suppressible.
  bad_allow,
};

inline constexpr std::size_t kRuleCount = 6;

std::string_view rule_name(Rule r);
std::string_view rule_summary(Rule r);  // one-line rationale (--list-rules)
std::optional<Rule> rule_from_name(std::string_view name);

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  Rule rule = Rule::bad_allow;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

struct Options {
  // Findings of `rule` in files whose repo-relative path starts with
  // `prefix` are exempt (the path allowlist — distinct from inline
  // suppressions, which carry a per-site justification).
  struct PathAllow {
    Rule rule;
    std::string prefix;
  };
  std::vector<PathAllow> allow_paths;
};

// The canonical configuration: src/native/ may read the host clock
// (that is the whole point of the native tier).
Options default_options();

// True for the C++ source extensions the tree uses.
bool is_cpp_source(std::string_view path);

// Lints one translation unit. `path` is the repo-relative path — it
// drives the path-scoped rules (src/native/ exemption, emission-path
// set for no-unordered-iteration, src/sim/ exemption for raw resumes)
// and is copied into each finding. Findings are ordered by line.
std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Options& opts = default_options());

}  // namespace mes::lint
