#include "lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>

namespace mes::lint {

namespace {

// ---------------------------------------------------------------- rules

struct RuleInfo {
  Rule rule;
  std::string_view name;
  std::string_view summary;
};

constexpr std::array<RuleInfo, kRuleCount> kRules{{
    {Rule::no_wallclock, "no-wallclock",
     "host clocks / entropy (steady_clock, system_clock, random_device, "
     "rand, time) are banned outside src/native/ — simulated results must "
     "never depend on the host"},
    {Rule::no_unordered_iteration, "no-unordered-iteration",
     "iterating an unordered_{map,set} on a result/emission path (exec, "
     "proto, api, scenario, tools) leaks pointer nondeterminism into "
     "CSV/JSON byte streams"},
    {Rule::coro_lifetime, "coro-lifetime",
     "Task/Proc coroutines must not take const-ref or rvalue-ref "
     "parameters (temporaries dangle at the first suspend), must not be "
     "by-reference-capturing lambdas, and handles are resumed only by the "
     "simulator (Simulator::schedule_* / spawn)"},
    {Rule::hot_path_pod, "hot-path-pod",
     "structs marked `// mes-lint: hot-pod` (sim::Event, wait nodes) stay "
     "POD: no std::function, virtual, or allocating containers — the "
     "+600% event-dispatch win depends on it"},
    {Rule::checked_errors, "checked-errors",
     "error results of Vfs/Kernel calls (flock, lock_file_ex, fsync, "
     "read, write, park, ...) must be consumed — kErrWouldBlock is a real "
     "outcome under mandatory locking; in net/dme sources the fabric "
     "primitives (send, recv, acquire, release) are checked too — a "
     "dropped send and a timed-out recv are real outcomes on a lossy "
     "fabric"},
    {Rule::bad_allow, "bad-allow",
     "malformed mes-lint directive (unknown rule name or allow() without "
     "a justification); never suppressible"},
}};

// ------------------------------------------------------------- scrubber
//
// Pass 1 over the raw text: build a same-length "code view" where
// comments, string/char literals and preprocessor lines are blanked to
// spaces (newlines preserved, so token lines stay true), and collect
// every comment for directive parsing.

struct Comment {
  std::size_t line;        // line the comment starts on (1-based)
  bool code_before;        // non-whitespace code precedes it on that line
  std::string text;        // comment body, delimiters stripped
};

struct ScrubResult {
  std::string code;
  std::vector<Comment> comments;
};

ScrubResult scrub(std::string_view text)
{
  ScrubResult out;
  out.code.assign(text.size(), ' ');
  std::size_t line = 1;
  bool code_on_line = false;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto at = [&](std::size_t k) { return k < n ? text[k] : '\0'; };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      code_on_line = false;
      ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '/') {
      Comment com{line, code_on_line, {}};
      i += 2;
      while (i < n && text[i] != '\n') com.text.push_back(text[i++]);
      out.comments.push_back(std::move(com));
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      Comment com{line, code_on_line, {}};
      i += 2;
      while (i < n && !(text[i] == '*' && at(i + 1) == '/')) {
        if (text[i] == '\n') {
          out.code[i] = '\n';
          ++line;
          code_on_line = false;
        }
        com.text.push_back(text[i]);
        ++i;
      }
      i = std::min(n, i + 2);
      out.comments.push_back(std::move(com));
      continue;
    }
    if (c == '#' && !code_on_line) {
      // Preprocessor directive: blank it (including continuations).
      while (i < n) {
        if (text[i] == '\n') {
          if (i > 0 && text[i - 1] == '\\') {
            out.code[i] = '\n';
            ++line;
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      continue;
    }
    if (c == 'R' && at(i + 1) == '"') {
      // Raw string literal: R"delim( ... )delim"
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim.push_back(text[j++]);
      const std::string close = ")" + delim + "\"";
      std::size_t end = text.find(close, j);
      end = end == std::string_view::npos ? n : end + close.size();
      for (std::size_t k = i; k < end; ++k) {
        if (text[k] == '\n') {
          out.code[k] = '\n';
          ++line;
        }
      }
      code_on_line = true;
      i = end;
      continue;
    }
    if (c == '\'' && i > 0 &&
        (std::isalnum(static_cast<unsigned char>(text[i - 1])) ||
         text[i - 1] == '_')) {
      // Digit separator (1'000'000) — not a character literal.
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\') ++i;
        if (i < n && text[i] == '\n') {
          out.code[i] = '\n';
          ++line;
        }
        ++i;
      }
      if (i < n) ++i;  // closing quote
      code_on_line = true;
      continue;
    }
    out.code[i] = c;
    if (!std::isspace(static_cast<unsigned char>(c))) code_on_line = true;
    ++i;
  }
  return out;
}

// ------------------------------------------------------------ tokenizer

struct Token {
  std::string_view text;
  std::size_t line;
  bool ident;  // identifier or keyword
};

std::vector<Token> tokenize(std::string_view code)
{
  std::vector<Token> toks;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = code.size();
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident(c)) {
      std::size_t j = i;
      while (j < n && is_ident(code[j])) ++j;
      toks.push_back({code.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    // Multi-char punctuators the rules care about. `>>` is deliberately
    // left as two tokens so template-argument matching stays simple.
    if (c == ':' && i + 1 < n && code[i + 1] == ':') {
      toks.push_back({code.substr(i, 2), line, false});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && code[i + 1] == '>') {
      toks.push_back({code.substr(i, 2), line, false});
      i += 2;
      continue;
    }
    if (c == '&' && i + 1 < n && code[i + 1] == '&') {
      toks.push_back({code.substr(i, 2), line, false});
      i += 2;
      continue;
    }
    toks.push_back({code.substr(i, 1), line, false});
    ++i;
  }
  return toks;
}

// ----------------------------------------------------------- directives

struct Directives {
  // line -> rules allowed on that line
  std::vector<std::pair<std::size_t, Rule>> allows;
  std::vector<std::size_t> hot_pod_lines;
  std::vector<Finding> errors;  // bad-allow findings
};

// The line a comment-only directive applies to: the next line that
// contains code (stacked comment lines skip through).
std::size_t next_code_line(std::string_view code, std::size_t after)
{
  std::size_t line = 1;
  std::size_t best = after + 1;
  bool found = false;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (line > after && !found &&
        !std::isspace(static_cast<unsigned char>(code[i]))) {
      best = line;
      found = true;
      break;
    }
    if (code[i] == '\n') ++line;
  }
  return best;
}

std::string_view trim(std::string_view s)
{
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

Directives parse_directives(std::string_view path, const ScrubResult& scrubbed)
{
  Directives out;
  for (const Comment& com : scrubbed.comments) {
    // A directive is a comment that *starts* with `mes-lint:` — prose
    // that merely mentions the syntax (docs, nested `// mes-lint: ...`
    // examples) is not one.
    std::string_view body = trim(com.text);
    if (body.rfind("mes-lint:", 0) != 0) continue;
    body = trim(body.substr(9));
    if (body.rfind("hot-pod", 0) == 0) {
      out.hot_pod_lines.push_back(com.line);
      continue;
    }
    if (body.rfind("allow", 0) != 0) {
      out.errors.push_back({std::string{path}, com.line, Rule::bad_allow,
                            "unrecognized mes-lint directive: '" +
                                std::string{body.substr(0, 40)} + "'"});
      continue;
    }
    body.remove_prefix(5);
    body = trim(body);
    if (body.empty() || body.front() != '(') {
      out.errors.push_back({std::string{path}, com.line, Rule::bad_allow,
                            "allow directive needs (rule[, rule...])"});
      continue;
    }
    const std::size_t close = body.find(')');
    if (close == std::string_view::npos) {
      out.errors.push_back({std::string{path}, com.line, Rule::bad_allow,
                            "allow directive missing ')'"});
      continue;
    }
    std::string_view rules = body.substr(1, close - 1);
    const std::string_view reason = trim(body.substr(close + 1));

    // A suppression must say *why*; reviewers read the reason, the
    // checker only requires that one exists.
    if (reason.empty()) {
      out.errors.push_back({std::string{path}, com.line, Rule::bad_allow,
                            "allow(" + std::string{rules} +
                                ") has no justification — state why the "
                                "finding is safe"});
      continue;
    }

    const std::size_t target =
        com.code_before ? com.line : next_code_line(scrubbed.code, com.line);
    bool any = false;
    while (!rules.empty()) {
      const std::size_t comma = rules.find(',');
      const std::string_view one = trim(rules.substr(0, comma));
      rules = comma == std::string_view::npos ? std::string_view{}
                                              : rules.substr(comma + 1);
      if (one.empty()) continue;
      const auto rule = rule_from_name(one);
      if (!rule || *rule == Rule::bad_allow) {
        out.errors.push_back({std::string{path}, com.line, Rule::bad_allow,
                              "allow() names unknown rule '" +
                                  std::string{one} + "'"});
        continue;
      }
      out.allows.emplace_back(target, *rule);
      any = true;
    }
    if (!any && out.errors.empty()) {
      out.errors.push_back({std::string{path}, com.line, Rule::bad_allow,
                            "allow() lists no rules"});
    }
  }
  return out;
}

// ------------------------------------------------------------- helpers

bool starts_with(std::string_view s, std::string_view prefix)
{
  return s.rfind(prefix, 0) == 0;
}

// Index of the matching closer for the opener at `open` (supports (), {},
// <> and []); toks.size() if unbalanced.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          std::string_view o, std::string_view c)
{
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == o) ++depth;
    if (toks[i].text == c) {
      --depth;
      if (depth == 0) return i;
    }
    // Angle brackets never survive a statement end; bail so an operator<
    // cannot swallow the rest of the file.
    if (o == "<" && toks[i].text == ";") return toks.size();
  }
  return toks.size();
}

std::size_t prev_significant(std::size_t i) { return i == 0 ? 0 : i - 1; }

// --------------------------------------------------------- rule engines

class Linter {
 public:
  Linter(std::string_view path, const std::vector<Token>& toks)
      : path_{path}, toks_{toks}
  {
  }

  std::vector<Finding> run(const Directives& dirs)
  {
    rule_no_wallclock();
    rule_no_unordered_iteration();
    rule_coro_lifetime();
    rule_hot_path_pod(dirs);
    rule_checked_errors();
    std::stable_sort(
        findings_.begin(), findings_.end(),
        [](const Finding& a, const Finding& b) { return a.line < b.line; });
    return std::move(findings_);
  }

 private:
  void add(std::size_t line, Rule rule, std::string message)
  {
    findings_.push_back({std::string{path_}, line, rule, std::move(message)});
  }

  const Token& tok(std::size_t i) const
  {
    static const Token sentinel{std::string_view{}, 0, false};
    return i < toks_.size() ? toks_[i] : sentinel;
  }

  // ---- rule 1: no-wallclock -------------------------------------------
  void rule_no_wallclock()
  {
    static const std::set<std::string_view> kAlwaysBanned{
        "steady_clock",  "system_clock", "high_resolution_clock",
        "random_device", "gettimeofday", "clock_gettime",
        "timespec_get",  "localtime",    "gmtime",
        "mktime",
    };
    // Common short names: only when *called*, and only unqualified or
    // std-qualified (so member functions named time()/clock() on
    // simulation types do not trip the rule).
    static const std::set<std::string_view> kBannedCalls{
        "time",
        "clock",
        "rand",
        "srand",
    };
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!toks_[i].ident) continue;
      const std::string_view t = toks_[i].text;
      if (kAlwaysBanned.count(t)) {
        add(toks_[i].line, Rule::no_wallclock,
            "'" + std::string{t} +
                "' reads host time/entropy — simulated code must use "
                "Simulator::now() or a seeded Rng (src/native/ is exempt)");
        continue;
      }
      if (kBannedCalls.count(t) && tok(i + 1).text == "(") {
        const Token& prev = tok(prev_significant(i));
        if (i == 0 || (prev.text != "." && prev.text != "->" &&
                       (prev.text != "::" ||
                        (i >= 2 && toks_[i - 2].text == "std")))) {
          // `::` qualification by anything but std is some other class's
          // member; `.`/`->` is a member call on a simulation object.
          if (prev.text == "::" && !(i >= 2 && toks_[i - 2].text == "std")) {
            continue;
          }
          add(toks_[i].line, Rule::no_wallclock,
              "call to '" + std::string{t} +
                  "()' depends on the host — use the simulated clock or a "
                  "seeded Rng");
        }
      }
    }
  }

  // ---- rule 2: no-unordered-iteration ---------------------------------
  void rule_no_unordered_iteration()
  {
    // Result/emission-affecting paths: anything that decides bits,
    // timing, ordering, or bytes written to CSV/JSON.
    static constexpr std::string_view kEmissionPaths[] = {
        "src/exec/", "src/proto/", "src/api/", "src/scenario/", "tools/",
    };
    bool scoped = false;
    for (const auto p : kEmissionPaths) {
      if (starts_with(path_, p)) scoped = true;
    }
    if (!scoped) return;

    static const std::set<std::string_view> kUnordered{
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};

    // Pass 1: names declared (or returned) with an unordered type.
    std::set<std::string_view> tainted;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!toks_[i].ident || !kUnordered.count(toks_[i].text)) continue;
      std::size_t j = i + 1;
      if (tok(j).text == "<") {
        j = match_forward(toks_, j, "<", ">");
        if (j >= toks_.size()) continue;
        ++j;
      }
      while (tok(j).text == "&" || tok(j).text == "*" ||
             tok(j).text == "const") {
        ++j;
      }
      if (tok(j).ident) tainted.insert(tok(j).text);
    }

    for (std::size_t i = 0; i < toks_.size(); ++i) {
      // Range-for whose sequence mentions a tainted name.
      if (toks_[i].ident && toks_[i].text == "for" && tok(i + 1).text == "(") {
        const std::size_t close = match_forward(toks_, i + 1, "(", ")");
        std::size_t colon = toks_.size();
        for (std::size_t k = i + 2; k < close; ++k) {
          if (toks_[k].text == ":") {
            colon = k;
            break;
          }
        }
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (toks_[k].ident && tainted.count(toks_[k].text)) {
            add(toks_[i].line, Rule::no_unordered_iteration,
                "range-for over unordered container '" +
                    std::string{toks_[k].text} +
                    "' — iteration order is pointer-nondeterministic; use "
                    "std::map/std::set or sort a copy first");
            break;
          }
        }
      }
      // Explicit iterator walk: tainted.begin() and friends.
      if (toks_[i].ident && tainted.count(toks_[i].text) &&
          (tok(i + 1).text == "." || tok(i + 1).text == "->")) {
        static const std::set<std::string_view> kIter{
            "begin", "cbegin", "rbegin", "crbegin", "end", "cend"};
        if (kIter.count(tok(i + 2).text) && tok(i + 3).text == "(") {
          add(toks_[i].line, Rule::no_unordered_iteration,
              "iterator over unordered container '" +
                  std::string{toks_[i].text} +
                  "' — iteration order is pointer-nondeterministic; use "
                  "std::map/std::set or sort a copy first");
        }
      }
    }
  }

  // ---- rule 3: coro-lifetime ------------------------------------------
  void rule_coro_lifetime()
  {
    scan_coroutine_signatures();
    scan_ref_capture_lambda_coroutines();
    scan_raw_resumes();
  }

  // Task<...> name(params) / Proc name(params): const-ref and rvalue-ref
  // parameters can bind temporaries that die at the caller's first
  // suspension point, leaving the coroutine frame with a dangling
  // reference. Mutable lvalue refs (`Process&`) cannot bind temporaries
  // and are the house idiom for kernel-owned objects, so they pass.
  void scan_coroutine_signatures()
  {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!toks_[i].ident) continue;
      std::size_t name_at = 0;
      if (toks_[i].text == "Task" && tok(i + 1).text == "<") {
        const std::size_t close = match_forward(toks_, i + 1, "<", ">");
        if (close >= toks_.size()) continue;
        name_at = close + 1;
      } else if (toks_[i].text == "Proc") {
        name_at = i + 1;
      } else {
        continue;
      }
      // Qualified definitions: Task<int> Vfs::flock(...).
      while (tok(name_at).ident && tok(name_at + 1).text == "::") {
        name_at += 2;
      }
      if (!tok(name_at).ident || tok(name_at + 1).text != "(") continue;
      const std::string fn{tok(name_at).text};
      const std::size_t open = name_at + 1;
      const std::size_t close = match_forward(toks_, open, "(", ")");
      if (close >= toks_.size()) continue;

      std::size_t param_start = open + 1;
      int depth = 0;
      for (std::size_t k = open + 1; k <= close; ++k) {
        if (tok(k).text == "(" || tok(k).text == "<" || tok(k).text == "[") {
          ++depth;
        }
        if (tok(k).text == ")" || tok(k).text == ">" || tok(k).text == "]") {
          --depth;
        }
        if ((tok(k).text == "," && depth == 0) || k == close) {
          check_coro_param(fn, param_start, k);
          param_start = k + 1;
        }
      }
    }
  }

  void check_coro_param(const std::string& fn, std::size_t first,
                        std::size_t last)
  {
    if (first >= last) return;
    bool saw_const = false;
    for (std::size_t k = first; k < last; ++k) {
      if (tok(k).text == "=") break;  // default argument expression
      if (tok(k).text == "const") saw_const = true;
      if (tok(k).text == "&&") {
        add(tok(k).line, Rule::coro_lifetime,
            "coroutine '" + fn +
                "' takes an rvalue-reference parameter — the temporary it "
                "binds dies at the first suspension; take it by value");
        return;
      }
      if (tok(k).text == "&" && saw_const) {
        add(tok(k).line, Rule::coro_lifetime,
            "coroutine '" + fn +
                "' takes a const-reference parameter — a temporary bound "
                "here dangles after the first suspension; take it by value");
        return;
      }
    }
  }

  // A lambda whose capture list takes anything by reference and whose
  // body contains co_await/co_return/co_yield: the captures live in the
  // lambda object, which is typically destroyed long before the
  // coroutine frame finishes.
  void scan_ref_capture_lambda_coroutines()
  {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].text != "[") continue;
      if (i > 0) {
        const Token& p = toks_[i - 1];
        // Subscript, not a lambda introducer.
        if (p.ident || p.text == "]" || p.text == ")") continue;
      }
      const std::size_t close = match_forward(toks_, i, "[", "]");
      if (close >= toks_.size()) continue;
      bool by_ref = false;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (tok(k).text == "&" || tok(k).text == "&&") by_ref = true;
      }
      if (!by_ref) continue;
      // Skip optional parameter list / specifiers, find the body.
      std::size_t j = close + 1;
      if (tok(j).text == "(") {
        j = match_forward(toks_, j, "(", ")");
        if (j >= toks_.size()) continue;
        ++j;
      }
      while (j < toks_.size() && tok(j).text != "{" && tok(j).text != ";") {
        ++j;
      }
      if (tok(j).text != "{") continue;
      const std::size_t body_end = match_forward(toks_, j, "{", "}");
      for (std::size_t k = j; k < body_end; ++k) {
        if (tok(k).text == "co_await" || tok(k).text == "co_return" ||
            tok(k).text == "co_yield") {
          add(toks_[i].line, Rule::coro_lifetime,
              "coroutine lambda captures by reference — the closure dies "
              "before the frame resumes; capture by value or pass state as "
              "a parameter");
          break;
        }
      }
    }
  }

  // Detached handles flow through the simulator: a raw .resume() outside
  // src/sim/ bypasses the event queue's ordering and reentrancy
  // guarantees (see sim/task.h on why inline resumption breaks frames).
  void scan_raw_resumes()
  {
    if (starts_with(path_, "src/sim/")) return;
    for (std::size_t i = 2; i < toks_.size(); ++i) {
      if (toks_[i].ident && toks_[i].text == "resume" &&
          (toks_[i - 1].text == "." || toks_[i - 1].text == "->") &&
          tok(i + 1).text == "(") {
        add(toks_[i].line, Rule::coro_lifetime,
            "raw coroutine resume() outside the simulator — route resumes "
            "through Simulator::schedule_resume/spawn so event ordering "
            "stays deterministic");
      }
    }
  }

  // ---- rule 4: hot-path-pod -------------------------------------------
  void rule_hot_path_pod(const Directives& dirs)
  {
    for (const std::size_t marker : dirs.hot_pod_lines) {
      // First struct/class declared at or after the marker line.
      std::size_t decl = toks_.size();
      for (std::size_t i = 0; i < toks_.size(); ++i) {
        if (toks_[i].line >= marker && toks_[i].ident &&
            (toks_[i].text == "struct" || toks_[i].text == "class")) {
          decl = i;
          break;
        }
      }
      if (decl >= toks_.size()) continue;
      const std::string name{tok(decl + 1).text};
      std::size_t open = decl;
      while (open < toks_.size() && tok(open).text != "{" &&
             tok(open).text != ";") {
        ++open;
      }
      if (tok(open).text != "{") continue;
      const std::size_t close = match_forward(toks_, open, "{", "}");

      static const std::set<std::string_view> kBannedTypes{
          "function",       "vector",
          "deque",          "list",
          "string",         "basic_string",
          "map",            "set",
          "multimap",       "multiset",
          "unordered_map",  "unordered_set",
          "unordered_multimap", "unordered_multiset",
          "shared_ptr",     "unique_ptr",
          "weak_ptr",
      };
      for (std::size_t k = open + 1; k < close; ++k) {
        if (!tok(k).ident) continue;
        const std::string_view t = tok(k).text;
        if (t == "virtual") {
          add(tok(k).line, Rule::hot_path_pod,
              "'virtual' inside hot-pod struct '" + name +
                  "' — indirect dispatch on the event hot path");
          continue;
        }
        if (t == "new") {
          add(tok(k).line, Rule::hot_path_pod,
              "allocation inside hot-pod struct '" + name + "'");
          continue;
        }
        if (kBannedTypes.count(t) && tok(k + 1).text != "(") {
          add(tok(k).line, Rule::hot_path_pod,
              "allocating/indirect member type '" + std::string{t} +
                  "' inside hot-pod struct '" + name +
                  "' — wait nodes and events must stay POD (pool cold "
                  "payloads in a side table instead)");
        }
      }
    }
  }

  // ---- rule 5: checked-errors -----------------------------------------
  void rule_checked_errors()
  {
    // Awaited calls whose co_await result is an error/outcome code.
    static const std::set<std::string_view> kAwaited{
        "flock", "lock_file_ex", "unlock_file_ex", "fsync",
        "read",  "write",        "park",           "sigwait",
    };
    // Plain calls with distinctive names returning an error/bool that
    // the compiler's [[nodiscard]] cannot see through older call shapes.
    static const std::set<std::string_view> kPlain{
        "create_file",
        "wake",
    };
    static const std::set<std::string_view> kStatementStart{
        ";", "{", "}", ")", "else", "do", ":",
    };
    // Fabric/DME primitives: send() reports a drop, recv() a timeout,
    // acquire()/release() a spent retry budget. Scoped to the net/dme
    // sources so unrelated same-named helpers elsewhere (e.g. the
    // single-host channels' void acquire Procs) stay unflagged.
    static const std::set<std::string_view> kFabricAwaited{
        "recv",
        "acquire",
        "release",
    };
    static const std::set<std::string_view> kFabricPlain{
        "send",
    };
    const bool fabric_scope = path_.starts_with("src/net/") ||
                              path_.starts_with("src/dme/") ||
                              path_.starts_with("src/channels/dme");

    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const bool at_start =
          i == 0 || kStatementStart.count(toks_[i - 1].text) > 0;
      if (!at_start) continue;

      if (toks_[i].text == "co_await") {
        // Find the last depth-0 call name between here and the ';'.
        std::string_view call;
        int depth = 0;
        for (std::size_t k = i + 1; k < toks_.size(); ++k) {
          const std::string_view t = tok(k).text;
          if (t == ";" && depth == 0) break;
          if (t == "(" || t == "[") ++depth;
          if (t == ")" || t == "]") --depth;
          if (depth == 0 && tok(k).ident && tok(k + 1).text == "(") {
            call = t;
          }
        }
        if (!call.empty() &&
            (kAwaited.count(call) ||
             (fabric_scope && kFabricAwaited.count(call)))) {
          add(toks_[i].line, Rule::checked_errors,
              "result of 'co_await " + std::string{call} +
                  "(...)' is discarded — check the error/outcome "
                  "(kErrWouldBlock and timeouts are real results)");
        }
        continue;
      }

      // ident(.ident|->ident)* ending in a checked plain call, as a
      // whole statement: obj.create_file(...);
      if (!toks_[i].ident || toks_[i].text == "return") continue;
      // `(void)call(...)` is an explicit, visible discard — accepted.
      if (i >= 3 && toks_[i - 1].text == ")" && toks_[i - 2].text == "void" &&
          toks_[i - 3].text == "(") {
        continue;
      }
      std::size_t k = i;
      std::string_view last_name = toks_[k].text;
      while (tok(k + 1).text == "." || tok(k + 1).text == "->" ||
             tok(k + 1).text == "::") {
        if (!tok(k + 2).ident) break;
        last_name = tok(k + 2).text;
        k += 2;
        if (tok(k + 1).text == "(" && tok(k + 2).text == ")" &&
            (tok(k + 3).text == "." || tok(k + 3).text == "->")) {
          k += 2;  // chained nullary call: kernel.vfs().create_file(...)
        }
      }
      const bool plain_hit =
          kPlain.count(last_name) > 0 ||
          (fabric_scope && kFabricPlain.count(last_name) > 0);
      if (tok(k + 1).text != "(" || !plain_hit) continue;
      const std::size_t close = match_forward(toks_, k + 1, "(", ")");
      if (close < toks_.size() && tok(close + 1).text == ";") {
        add(toks_[i].line, Rule::checked_errors,
            "error result of '" + std::string{last_name} +
                "(...)' is discarded — assign and check it (cast through "
                "(void) only with an explicit reason)");
      }
    }
  }

  std::string_view path_;
  const std::vector<Token>& toks_;
  std::vector<Finding> findings_;
};

}  // namespace

// ------------------------------------------------------------ public api

std::string_view rule_name(Rule r)
{
  for (const auto& info : kRules) {
    if (info.rule == r) return info.name;
  }
  return "?";
}

std::string_view rule_summary(Rule r)
{
  for (const auto& info : kRules) {
    if (info.rule == r) return info.summary;
  }
  return {};
}

std::optional<Rule> rule_from_name(std::string_view name)
{
  for (const auto& info : kRules) {
    if (info.name == name) return info.rule;
  }
  return std::nullopt;
}

Options default_options()
{
  Options o;
  // The native tier's entire purpose is reading the host clock.
  o.allow_paths.push_back({Rule::no_wallclock, "src/native/"});
  return o;
}

bool is_cpp_source(std::string_view path)
{
  for (const std::string_view ext : {".cpp", ".cc", ".cxx", ".h", ".hpp"}) {
    if (path.size() > ext.size() &&
        path.substr(path.size() - ext.size()) == ext) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Options& opts)
{
  const ScrubResult scrubbed = scrub(text);
  const Directives dirs = parse_directives(path, scrubbed);
  const std::vector<Token> toks = tokenize(scrubbed.code);

  std::vector<Finding> raw = Linter{path, toks}.run(dirs);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool allowed = false;
    for (const auto& [line, rule] : dirs.allows) {
      if (line == f.line && rule == f.rule) allowed = true;
    }
    for (const auto& pa : opts.allow_paths) {
      if (pa.rule == f.rule && starts_with(path, pa.prefix)) allowed = true;
    }
    if (!allowed) out.push_back(std::move(f));
  }
  for (const Finding& e : dirs.errors) out.push_back(e);
  std::stable_sort(
      out.begin(), out.end(),
      [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return out;
}

}  // namespace mes::lint
